package engine

import (
	"math"
	"strings"
	"testing"
	"time"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
	"sqloop/internal/storage"
)

// newTestSession returns a session on a fresh heap-backed engine.
func newTestSession(t *testing.T) *Session {
	t.Helper()
	return New(Config{}).NewSession()
}

func mustExec(t *testing.T, s *Session, sql string, args ...sqltypes.Value) *Result {
	t.Helper()
	res, err := s.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func setupEdges(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)`)
	for _, e := range [][3]any{
		{1, 2, 0.5}, {1, 3, 0.5}, {2, 3, 1.0}, {3, 1, 0.5}, {3, 4, 0.5}, {4, 1, 1.0},
	} {
		mustExec(t, s, `INSERT INTO edges VALUES (?, ?, ?)`,
			sqltypes.NewInt(int64(e[0].(int))), sqltypes.NewInt(int64(e[1].(int))),
			sqltypes.NewFloat(e[2].(float64)))
	}
}

func TestCreateInsertSelect(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, name TEXT, score DOUBLE)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 'a', 1.5), (2, 'b', 2.5), (3, 'c', 3.5)`)
	res := mustExec(t, s, `SELECT id, name FROM t WHERE score > 2 ORDER BY id`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Int() != 2 || res.Rows[0][1].Str() != "b" {
		t.Errorf("row0 = %v", res.Rows[0])
	}
	if res.Columns[0] != "id" || res.Columns[1] != "name" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestDuplicatePrimaryKey(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v TEXT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 'a')`)
	if _, err := s.Exec(`INSERT INTO t VALUES (1, 'b')`); err == nil {
		t.Fatal("expected duplicate key error")
	}
}

func TestSelectExpressionForms(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE t (a BIGINT, b DOUBLE, s TEXT)`)
	mustExec(t, s, `INSERT INTO t VALUES (3, 1.5, 'x'), (5, NULL, 'y')`)
	tests := []struct {
		sql  string
		want string // String() of single value of first row
	}{
		{`SELECT a + 1 FROM t WHERE s = 'x'`, "4"},
		{`SELECT a * b FROM t WHERE s = 'x'`, "4.5"},
		{`SELECT COALESCE(b, 9.0) FROM t WHERE s = 'y'`, "9"},
		{`SELECT CASE WHEN a > 4 THEN 'big' ELSE 'small' END FROM t WHERE s = 'y'`, "big"},
		{`SELECT LEAST(a, 4) FROM t WHERE s = 'x'`, "3"},
		{`SELECT GREATEST(a, 4) FROM t WHERE s = 'x'`, "4"},
		{`SELECT ABS(0 - a) FROM t WHERE s = 'x'`, "3"},
		{`SELECT a IS NULL FROM t WHERE s = 'x'`, "false"},
		{`SELECT b IS NULL FROM t WHERE s = 'y'`, "true"},
		{`SELECT a IN (1, 3, 5) FROM t WHERE s = 'x'`, "true"},
		{`SELECT NOT (a = 3) FROM t WHERE s = 'x'`, "false"},
		{`SELECT MOD(a, 2) FROM t WHERE s = 'x'`, "1"},
		{`SELECT (SELECT MAX(a) FROM t)`, "5"},
		{`SELECT Infinity`, "Infinity"},
	}
	for _, tt := range tests {
		res := mustExec(t, s, tt.sql)
		if len(res.Rows) != 1 {
			t.Errorf("%s: %d rows", tt.sql, len(res.Rows))
			continue
		}
		if got := res.Rows[0][0].String(); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.sql, got, tt.want)
		}
	}
}

func TestAggregates(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE n (g BIGINT, v DOUBLE)`)
	mustExec(t, s, `INSERT INTO n VALUES (1, 1.0), (1, 2.0), (1, NULL), (2, 10.0)`)
	res := mustExec(t, s, `SELECT g, SUM(v), COUNT(v), COUNT(*), AVG(v), MIN(v), MAX(v) FROM n GROUP BY g ORDER BY g`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	if r[1].Float() != 3.0 || r[2].Int() != 2 || r[3].Int() != 3 || r[4].Float() != 1.5 ||
		r[5].Float() != 1.0 || r[6].Float() != 2.0 {
		t.Errorf("group 1 aggregates = %v", r)
	}
	// Global aggregate without GROUP BY over empty filter.
	res = mustExec(t, s, `SELECT SUM(v), COUNT(*) FROM n WHERE g = 99`)
	if !res.Rows[0][0].IsNull() || res.Rows[0][1].Int() != 0 {
		t.Errorf("empty aggregates = %v", res.Rows[0])
	}
}

func TestGroupByHaving(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE n (g BIGINT, v BIGINT)`)
	mustExec(t, s, `INSERT INTO n VALUES (1, 1), (1, 2), (2, 3), (3, 4), (3, 5), (3, 6)`)
	res := mustExec(t, s, `SELECT g, COUNT(*) AS c FROM n GROUP BY g HAVING COUNT(*) >= 2 ORDER BY c DESC`)
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 3 || res.Rows[1][0].Int() != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoins(t *testing.T) {
	s := newTestSession(t)
	setupEdges(t, s)
	mustExec(t, s, `CREATE TABLE nodes (id BIGINT PRIMARY KEY, label TEXT)`)
	mustExec(t, s, `INSERT INTO nodes VALUES (1, 'one'), (2, 'two'), (3, 'three'), (4, 'four'), (9, 'island')`)

	// Inner hash join.
	res := mustExec(t, s, `SELECT nodes.label, edges.dst FROM nodes JOIN edges ON nodes.id = edges.src WHERE nodes.id = 1 ORDER BY edges.dst`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "one" {
		t.Fatalf("inner join rows = %v", res.Rows)
	}

	// Left join pads with NULLs.
	res = mustExec(t, s, `SELECT nodes.id, edges.dst FROM nodes LEFT JOIN edges ON nodes.id = edges.src WHERE nodes.id = 9`)
	if len(res.Rows) != 1 || !res.Rows[0][1].IsNull() {
		t.Fatalf("left join rows = %v", res.Rows)
	}

	// Self join (the pattern SQLoop analyzes).
	res = mustExec(t, s, `
		SELECT a.src, b.dst FROM edges AS a JOIN edges AS b ON a.dst = b.src
		WHERE a.src = 1 ORDER BY b.dst`)
	if len(res.Rows) == 0 {
		t.Fatal("self join returned nothing")
	}

	// Non-equi join falls back to nested loop.
	res = mustExec(t, s, `SELECT COUNT(*) FROM nodes JOIN edges ON nodes.id < edges.src`)
	if res.Rows[0][0].Int() == 0 {
		t.Fatal("non-equi join returned nothing")
	}

	// Join with residual predicate alongside the equi key.
	res = mustExec(t, s, `SELECT COUNT(*) FROM nodes JOIN edges ON nodes.id = edges.src AND edges.weight > 0.6`)
	if got := res.Rows[0][0].Int(); got != 2 {
		t.Fatalf("residual join count = %d, want 2", got)
	}
}

func TestUnionAndDistinct(t *testing.T) {
	s := newTestSession(t)
	setupEdges(t, s)
	all := mustExec(t, s, `SELECT src FROM edges UNION ALL SELECT dst FROM edges`)
	if len(all.Rows) != 12 {
		t.Fatalf("UNION ALL rows = %d", len(all.Rows))
	}
	uniq := mustExec(t, s, `SELECT src FROM edges UNION SELECT dst FROM edges`)
	if len(uniq.Rows) != 4 {
		t.Fatalf("UNION rows = %d, want 4", len(uniq.Rows))
	}
	dis := mustExec(t, s, `SELECT DISTINCT src FROM edges`)
	if len(dis.Rows) != 4 {
		t.Fatalf("DISTINCT rows = %d, want 4", len(dis.Rows))
	}
}

func TestDerivedTableAndCTE(t *testing.T) {
	s := newTestSession(t)
	setupEdges(t, s)
	res := mustExec(t, s, `
		SELECT src, COUNT(*) FROM (SELECT src FROM edges UNION ALL SELECT dst AS src FROM edges) AS u
		GROUP BY src ORDER BY src`)
	if len(res.Rows) != 4 {
		t.Fatalf("derived rows = %v", res.Rows)
	}
	res = mustExec(t, s, `WITH u AS (SELECT src FROM edges UNION SELECT dst FROM edges) SELECT COUNT(*) FROM u`)
	if res.Rows[0][0].Int() != 4 {
		t.Fatalf("CTE count = %v", res.Rows[0])
	}
}

func TestViews(t *testing.T) {
	s := newTestSession(t)
	setupEdges(t, s)
	mustExec(t, s, `CREATE VIEW heavy AS SELECT * FROM edges WHERE weight >= 1.0`)
	res := mustExec(t, s, `SELECT COUNT(*) FROM heavy`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("view count = %v", res.Rows[0])
	}
	mustExec(t, s, `CREATE OR REPLACE VIEW heavy AS SELECT * FROM edges`)
	res = mustExec(t, s, `SELECT COUNT(*) FROM heavy`)
	if res.Rows[0][0].Int() != 6 {
		t.Fatalf("replaced view count = %v", res.Rows[0])
	}
	mustExec(t, s, `DROP VIEW heavy`)
	if _, err := s.Exec(`SELECT * FROM heavy`); err == nil {
		t.Fatal("dropped view still resolves")
	}
}

func TestViewOverUnionOfPartitions(t *testing.T) {
	// The exact pattern SQLoop uses: R redefined as a view over
	// partition tables.
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE p0 (id BIGINT PRIMARY KEY, v DOUBLE)`)
	mustExec(t, s, `CREATE TABLE p1 (id BIGINT PRIMARY KEY, v DOUBLE)`)
	mustExec(t, s, `INSERT INTO p0 VALUES (0, 1.0), (2, 2.0)`)
	mustExec(t, s, `INSERT INTO p1 VALUES (1, 3.0), (3, 4.0)`)
	mustExec(t, s, `CREATE VIEW r AS SELECT * FROM p0 UNION ALL SELECT * FROM p1`)
	res := mustExec(t, s, `SELECT SUM(v) FROM r`)
	if res.Rows[0][0].Float() != 10.0 {
		t.Fatalf("sum over partition view = %v", res.Rows[0])
	}
	// Writes to a partition are visible through the view.
	mustExec(t, s, `UPDATE p0 SET v = 5.0 WHERE id = 0`)
	res = mustExec(t, s, `SELECT SUM(v) FROM r`)
	if res.Rows[0][0].Float() != 14.0 {
		t.Fatalf("sum after partition update = %v", res.Rows[0])
	}
}

func TestUpdate(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v DOUBLE)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0)`)
	res := mustExec(t, s, `UPDATE t SET v = v + 10 WHERE id > 1`)
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	// No-op update counts zero changed rows (MySQL semantics).
	res = mustExec(t, s, `UPDATE t SET v = v WHERE id = 1`)
	if res.RowsAffected != 0 {
		t.Fatalf("no-op update affected = %d", res.RowsAffected)
	}
	res = mustExec(t, s, `SELECT v FROM t WHERE id = 3`)
	if res.Rows[0][0].Float() != 13.0 {
		t.Fatalf("v = %v", res.Rows[0])
	}
}

func TestUpdateFromJoin(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE r (id BIGINT PRIMARY KEY, delta DOUBLE)`)
	mustExec(t, s, `CREATE TABLE msgs (id BIGINT, val DOUBLE)`)
	mustExec(t, s, `INSERT INTO r VALUES (1, 0.0), (2, 0.0), (3, 0.5)`)
	mustExec(t, s, `INSERT INTO msgs VALUES (1, 2.5), (2, 1.5), (9, 9.9)`)
	res := mustExec(t, s, `UPDATE r SET delta = r.delta + m.val FROM msgs AS m WHERE r.id = m.id`)
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d, want 2", res.RowsAffected)
	}
	got := mustExec(t, s, `SELECT delta FROM r ORDER BY id`)
	want := []float64{2.5, 1.5, 0.5}
	for i, w := range want {
		if got.Rows[i][0].Float() != w {
			t.Errorf("row %d delta = %v, want %v", i, got.Rows[i][0], w)
		}
	}
	// Aggregated FROM source (the Gather-task shape).
	mustExec(t, s, `INSERT INTO msgs VALUES (3, 1.0), (3, 2.0)`)
	res = mustExec(t, s, `UPDATE r SET delta = m.total FROM (SELECT id, SUM(val) AS total FROM msgs GROUP BY id) AS m WHERE r.id = m.id`)
	// Rows 1 and 2 are set to their current values, so only row 3 counts
	// under changed-rows semantics.
	if res.RowsAffected != 1 {
		t.Fatalf("aggregated update affected = %d, want 1", res.RowsAffected)
	}
	got = mustExec(t, s, `SELECT delta FROM r WHERE id = 3`)
	if got.Rows[0][0].Float() != 3.0 {
		t.Fatalf("id 3 delta = %v", got.Rows[0][0])
	}
}

func TestDeleteAndTruncate(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 1), (2, 2), (3, 3)`)
	res := mustExec(t, s, `DELETE FROM t WHERE v >= 2`)
	if res.RowsAffected != 2 {
		t.Fatalf("deleted = %d", res.RowsAffected)
	}
	res = mustExec(t, s, `TRUNCATE TABLE t`)
	if res.RowsAffected != 1 {
		t.Fatalf("truncated = %d", res.RowsAffected)
	}
	if got := mustExec(t, s, `SELECT COUNT(*) FROM t`); got.Rows[0][0].Int() != 0 {
		t.Fatal("table not empty after truncate")
	}
}

func TestCreateTableAs(t *testing.T) {
	s := newTestSession(t)
	setupEdges(t, s)
	mustExec(t, s, `CREATE TABLE m AS SELECT src, SUM(weight) AS w FROM edges GROUP BY src`)
	res := mustExec(t, s, `SELECT COUNT(*) FROM m`)
	if res.Rows[0][0].Int() != 4 {
		t.Fatalf("CTAS rows = %v", res.Rows[0])
	}
	res = mustExec(t, s, `SELECT w FROM m WHERE src = 1`)
	if res.Rows[0][0].Float() != 1.0 {
		t.Fatalf("CTAS aggregate = %v", res.Rows[0])
	}
}

func TestIndexLookup(t *testing.T) {
	s := newTestSession(t)
	setupEdges(t, s)
	mustExec(t, s, `CREATE INDEX idx_dst ON edges (dst)`)
	before := s.eng.Stats().RowsScanned
	res := mustExec(t, s, `SELECT src FROM edges WHERE dst = 3 ORDER BY src`)
	if len(res.Rows) != 2 {
		t.Fatalf("index lookup rows = %v", res.Rows)
	}
	after := s.eng.Stats().RowsScanned
	if after-before > 3 {
		t.Errorf("index lookup scanned %d rows, expected a point lookup", after-before)
	}
	// Index stays correct across updates and deletes.
	mustExec(t, s, `UPDATE edges SET dst = 4 WHERE src = 2`)
	res = mustExec(t, s, `SELECT COUNT(*) FROM edges WHERE dst = 3`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("after update, dst=3 count = %v", res.Rows[0])
	}
	mustExec(t, s, `DELETE FROM edges WHERE dst = 4`)
	res = mustExec(t, s, `SELECT COUNT(*) FROM edges WHERE dst = 4`)
	if res.Rows[0][0].Int() != 0 {
		t.Fatalf("after delete, dst=4 count = %v", res.Rows[0])
	}
}

func TestPrimaryKeyLookup(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)`)
	for i := 0; i < 100; i++ {
		mustExec(t, s, `INSERT INTO t VALUES (?, ?)`, sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i*i)))
	}
	before := s.eng.Stats().RowsScanned
	res := mustExec(t, s, `SELECT v FROM t WHERE id = 7`)
	if res.Rows[0][0].Int() != 49 {
		t.Fatalf("pk lookup = %v", res.Rows[0])
	}
	if got := s.eng.Stats().RowsScanned - before; got > 2 {
		t.Errorf("pk lookup scanned %d rows", got)
	}
}

func TestTransactionsRollback(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 10)`)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO t VALUES (2, 20)`)
	mustExec(t, s, `UPDATE t SET v = 99 WHERE id = 1`)
	mustExec(t, s, `DELETE FROM t WHERE id = 1`)
	mustExec(t, s, `ROLLBACK`)
	res := mustExec(t, s, `SELECT id, v FROM t ORDER BY id`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 || res.Rows[0][1].Int() != 10 {
		t.Fatalf("after rollback: %v", res.Rows)
	}
	// Commit keeps changes.
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO t VALUES (3, 30)`)
	mustExec(t, s, `COMMIT`)
	res = mustExec(t, s, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("after commit: %v", res.Rows[0])
	}
}

func TestOrderByVariants(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE t (a BIGINT, b TEXT)`)
	mustExec(t, s, `INSERT INTO t VALUES (3, 'c'), (1, 'a'), (2, 'b')`)
	res := mustExec(t, s, `SELECT a AS x, b FROM t ORDER BY x DESC`)
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("order by alias: %v", res.Rows)
	}
	res = mustExec(t, s, `SELECT a, b FROM t ORDER BY 2`)
	if res.Rows[0][1].Str() != "a" {
		t.Fatalf("order by ordinal: %v", res.Rows)
	}
	res = mustExec(t, s, `SELECT b FROM t ORDER BY a * -1`)
	if res.Rows[0][0].Str() != "c" {
		t.Fatalf("order by expression: %v", res.Rows)
	}
	res = mustExec(t, s, `SELECT a FROM t ORDER BY a LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[1][0].Int() != 2 {
		t.Fatalf("limit: %v", res.Rows)
	}
}

func TestValuesStatement(t *testing.T) {
	s := newTestSession(t)
	res := mustExec(t, s, `VALUES (1, 'a'), (2, 'b')`)
	if len(res.Rows) != 2 || res.Columns[0] != "column1" {
		t.Fatalf("values = %v / %v", res.Columns, res.Rows)
	}
}

func TestParthashPartitioning(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY)`)
	for i := 0; i < 64; i++ {
		mustExec(t, s, `INSERT INTO t VALUES (?)`, sqltypes.NewInt(int64(i)))
	}
	total := 0
	for p := 0; p < 4; p++ {
		res := mustExec(t, s, `SELECT COUNT(*) FROM t WHERE PARTHASH(id, 4) = ?`, sqltypes.NewInt(int64(p)))
		n := int(res.Rows[0][0].Int())
		if n == 0 {
			t.Errorf("partition %d empty", p)
		}
		total += n
	}
	if total != 64 {
		t.Fatalf("partitions cover %d rows, want 64", total)
	}
}

func TestNullSemanticsInWhere(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE t (a BIGINT, b DOUBLE)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, NULL), (2, 1.0)`)
	// NULL comparisons filter out (UNKNOWN is not TRUE).
	res := mustExec(t, s, `SELECT a FROM t WHERE b > 0`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, s, `SELECT a FROM t WHERE b IS NULL`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// != Infinity pattern from the SSSP query.
	mustExec(t, s, `INSERT INTO t VALUES (3, Infinity)`)
	res = mustExec(t, s, `SELECT a FROM t WHERE b != Infinity`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInfinityArithmetic(t *testing.T) {
	s := newTestSession(t)
	res := mustExec(t, s, `SELECT Infinity + 1.0, LEAST(Infinity, 5.0)`)
	if !math.IsInf(res.Rows[0][0].Float(), 1) {
		t.Errorf("Infinity + 1 = %v", res.Rows[0][0])
	}
	if res.Rows[0][1].Float() != 5.0 {
		t.Errorf("LEAST(Infinity, 5) = %v", res.Rows[0][1])
	}
}

func TestErrorCases(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
	cases := []string{
		`SELECT * FROM missing`,
		`SELECT nope FROM t`,
		`INSERT INTO missing VALUES (1)`,
		`INSERT INTO t VALUES (1, 2)`,
		`UPDATE missing SET a = 1`,
		`UPDATE t SET nope = 1`,
		`DELETE FROM missing`,
		`CREATE TABLE t (a BIGINT)`,
		`DROP TABLE missing`,
		`CREATE INDEX i ON missing (a)`,
		`CREATE INDEX i ON t (nope)`,
		`SELECT SUM(a) + a FROM t GROUP BY a ORDER BY nope`,
		`SELECT UNKNOWNFUNC(a) FROM t`,
		`SELECT a FROM t WHERE a = ?`, // missing bind arg
		`SELECT (SELECT a, a FROM t WHERE a = 1)`,
	}
	for _, sql := range cases {
		if _, err := s.Exec(sql); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", sql)
		}
	}
	// Iterative CTEs must be rejected by the engine itself.
	if _, err := s.Exec(`WITH ITERATIVE r(id, v) AS (SELECT 1, 2 ITERATE SELECT id, v FROM r UNTIL 1 ITERATIONS) SELECT * FROM r`); err == nil ||
		!strings.Contains(err.Error(), "SQLoop") {
		t.Errorf("iterative CTE error = %v", err)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE a (id BIGINT)`)
	mustExec(t, s, `CREATE TABLE b (id BIGINT)`)
	mustExec(t, s, `INSERT INTO a VALUES (1)`)
	mustExec(t, s, `INSERT INTO b VALUES (1)`)
	if _, err := s.Exec(`SELECT id FROM a, b`); err == nil {
		t.Fatal("ambiguous column reference must error")
	}
	mustExec(t, s, `SELECT a.id FROM a, b`)
}

func TestBackendProfiles(t *testing.T) {
	for _, name := range []string{"pgsim", "mysim", "mariasim"} {
		t.Run(name, func(t *testing.T) {
			cfg, err := Profile(name)
			if err != nil {
				t.Fatal(err)
			}
			s := New(cfg).NewSession()
			mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v DOUBLE)`)
			mustExec(t, s, `INSERT INTO t VALUES (2, 2.0), (1, 1.0), (3, 3.0)`)
			mustExec(t, s, `UPDATE t SET v = v * 2 WHERE id = 2`)
			res := mustExec(t, s, `SELECT SUM(v) FROM t`)
			if res.Rows[0][0].Float() != 8.0 {
				t.Fatalf("%s: sum = %v", name, res.Rows[0])
			}
		})
	}
	wantBackend := map[string]storage.Kind{
		"pgsim": storage.KindHeap, "mysim": storage.KindBTree, "mariasim": storage.KindLSM,
	}
	for name, kind := range wantBackend {
		cfg, _ := Profile(name)
		if cfg.Backend != kind {
			t.Errorf("Profile(%s).Backend = %v, want %v", name, cfg.Backend, kind)
		}
	}
	if _, err := Profile("oracle"); err == nil {
		t.Error("unknown profile must error")
	}
}

func TestExecScript(t *testing.T) {
	s := newTestSession(t)
	res, err := s.ExecScript(`
		CREATE TABLE t (a BIGINT);
		INSERT INTO t VALUES (1), (2);
		SELECT SUM(a) FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("script result = %v", res.Rows)
	}
}

func TestStatsCounters(t *testing.T) {
	s := newTestSession(t)
	setupEdges(t, s)
	st := s.eng.Stats()
	if st.RowsInserted != 6 || st.Statements == 0 {
		t.Errorf("stats = %+v", st)
	}
	mustExec(t, s, `SELECT e1.src FROM edges AS e1 JOIN edges AS e2 ON e1.dst = e2.src`)
	if got := s.eng.Stats(); got.RowsJoined == 0 || got.RowsScanned == 0 {
		t.Errorf("join stats = %+v", got)
	}
}

func TestCostModelCharges(t *testing.T) {
	var slept []int64
	origSleep := sleep
	sleep = func(d time.Duration) { slept = append(slept, int64(d)) }
	defer func() { sleep = origSleep }()

	cfg, _ := Profile("pgsim")
	cfg.Cost = DefaultCost(cfg.Dialect)
	s := New(cfg).NewSession()
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1), (2), (3)`)
	// Charges accrue as debt and only sleep once a full quantum is owed;
	// run enough statements to cross it.
	for i := 0; i < 20; i++ {
		mustExec(t, s, `SELECT COUNT(*) FROM t`)
	}
	if len(slept) == 0 {
		t.Fatal("cost model never charged")
	}
	var total int64
	for _, d := range slept {
		total += d
	}
	if total <= 0 {
		t.Fatalf("total charge = %d", total)
	}
}

func TestCostModelScalesByProfile(t *testing.T) {
	pg := DefaultCost(sqlparser.DialectPGSim)
	my := DefaultCost(sqlparser.DialectMySim)
	w := workCounters{scanned: 1000, joined: 1000, written: 100}
	if my.charge(w) <= pg.charge(w) {
		t.Error("mysim must charge more than pgsim for identical work")
	}
	var nilModel *CostModel
	if nilModel.charge(w) != 0 {
		t.Error("nil cost model must charge zero")
	}
}
