// Package engine implements the embedded relational engine SQLoop runs
// against: a catalog of tables/views/indexes over pluggable storage
// backends, an AST-walking executor with hash joins and grouped
// aggregation, per-table read/write locking so independent connections
// execute concurrently, statement-level undo-based transactions, and a
// calibrated cost model that emulates the per-connection server work of
// the paper's testbed (see DESIGN.md, substitutions).
package engine

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqloop/internal/btree"
	"sqloop/internal/lsm"
	"sqloop/internal/obs"
	"sqloop/internal/pager"
	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
	"sqloop/internal/storage"
)

// Config configures a new engine instance.
type Config struct {
	// Backend selects the storage data structure (defaults to heap).
	Backend storage.Kind
	// Dialect is the SQL dialect profile this engine advertises.
	Dialect sqlparser.Dialect
	// Cost, when non-nil, charges simulated per-row latency so that
	// multi-connection parallelism behaves like a multi-core server even
	// on a single-CPU host. nil disables all charging.
	Cost *CostModel
	// StmtCacheSize bounds the parsed-statement cache: 0 uses the
	// default (512 entries), negative disables caching entirely.
	StmtCacheSize int
	// DisableExprCompile turns off the compiled hot row path: expressions
	// are evaluated by the tree-walking interpreter and operator keys use
	// string encoding instead of 64-bit row hashes. Results are identical
	// either way; this is the A/B switch for the perf experiments.
	DisableExprCompile bool
	// DisableVectorize turns off batch (vectorized) execution over the
	// compiled programs: filters, projections, grouping and join probes
	// run row-at-a-time instead of in column batches. Implied by
	// DisableExprCompile (the batch path rides on compiled programs).
	// Results are identical either way; this is the A/B switch for the
	// PR 8 perf experiments.
	DisableVectorize bool
	// Workers sets the intra-query parallelism degree: morsel-driven
	// parallel scans, joins and aggregation fan out over a shared pool of
	// Workers goroutines. 0 means runtime.GOMAXPROCS(0); 1 is exactly the
	// serial path. Results are bit-identical at every setting.
	Workers int
	// DisableParallel forces serial execution regardless of Workers; this
	// is the A/B switch for the PR 9 perf experiments.
	DisableParallel bool
	// DataDir is where the disk backend keeps its page and WAL files.
	// Empty means a throwaway temp directory (removed by Close). Ignored
	// by the in-memory backends.
	DataDir string
	// BufferPoolPages bounds the disk backend's buffer pool in 8 KiB
	// pages, shared across all tables (0 = default 256 = 2 MiB).
	BufferPoolPages int
	// WALCheckpointBytes, when positive, starts a background checkpointer
	// for the disk backend: any table whose write-ahead log grows past
	// this many bytes is checkpointed (pages flushed, WAL truncated)
	// without waiting for an explicit Checkpoint call, so long DML-only
	// runs keep bounded logs. 0 disables the background checkpointer.
	WALCheckpointBytes int64
}

// Profile returns the engine configuration that simulates the named
// database system ("pgsim"/"postgres", "mysim"/"mysql",
// "mariasim"/"mariadb"), pairing the dialect with its storage backend.
func Profile(name string) (Config, error) {
	d, err := sqlparser.ParseDialect(name)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{Dialect: d}
	switch d {
	case sqlparser.DialectMySim:
		cfg.Backend = storage.KindBTree
	case sqlparser.DialectMariaSim:
		cfg.Backend = storage.KindLSM
	default:
		cfg.Backend = storage.KindHeap
	}
	return cfg, nil
}

// Engine is one simulated database server instance. All sessions created
// from it share the catalog; each session corresponds to one client
// connection (the paper's "new process per JDBC connection").
type Engine struct {
	cfg Config

	// pool runs morsel-parallel query regions; nil when the effective
	// worker count is 1 (serial execution). Closed (drained) by Close.
	pool *workerPool

	mu     sync.RWMutex // guards catalog maps
	tables map[string]*Table
	views  map[string]*view

	rowid atomic.Int64 // synthetic key source for tables without a PK

	// catalogGen counts catalog changes (any CREATE/DROP of tables,
	// views or indexes); cached parses whose dependency set is unknown
	// are valid only for the generation they were taken under. Atomic
	// because CREATE INDEX takes only the table lock, not the catalog
	// mutex.
	catalogGen atomic.Uint64
	// objGens holds one generation counter per catalog object name
	// (lowercased string -> *atomic.Uint64): relcache-style invalidation
	// so DDL on one object leaves cached statements over others valid.
	objGens sync.Map
	// stmts caches parsed statements (nil = caching disabled).
	stmts *stmtCache

	// exprCompiles counts expression lowerings; exprCacheHits counts
	// program-cache reuses. Steady-state iterative rounds should grow
	// only the latter (see compile.go).
	exprCompiles  atomic.Int64
	exprCacheHits atomic.Int64

	// vecBatches counts batch windows executed on the vectorized path;
	// vecFallbacks counts windows (or whole grouped inputs) that bailed
	// to row-at-a-time execution to reproduce an interpreter error.
	vecBatches   atomic.Int64
	vecFallbacks atomic.Int64

	stats Stats

	// metrics, when set, receives per-statement latency and lock-wait
	// observations in addition to the logical Stats counters.
	metrics atomic.Pointer[obs.Registry]

	// pagerMu guards the lazily-opened durable backend (Backend ==
	// storage.KindDisk). pagerTemp marks a DataDir the engine created
	// itself and removes on Close.
	pagerMu   sync.Mutex
	pager     *pager.DB
	pagerDir  string
	pagerTemp bool

	// ckptStop/ckptDone control the background WAL checkpointer (started
	// lazily with the pager when Config.WALCheckpointBytes > 0; both nil
	// otherwise). Guarded by pagerMu.
	ckptStop chan struct{}
	ckptDone chan struct{}

	// recoverErr is a failed disk-catalog recovery (set once in New,
	// read-only after); while non-nil every statement errors instead of
	// running over an engine that silently dropped durable tables.
	recoverErr error
}

// view is a named stored query.
type view struct {
	name string
	body sqlparser.SelectBody
}

// Stats aggregates logical work counters across the engine, exposed for
// experiments: they measure algorithmic work independent of wall time.
type Stats struct {
	RowsScanned  atomic.Int64
	RowsJoined   atomic.Int64
	RowsGrouped  atomic.Int64
	RowsInserted atomic.Int64
	RowsUpdated  atomic.Int64 // rows actually changed
	RowsDeleted  atomic.Int64
	Statements   atomic.Int64
	// LockWaits counts lock acquisitions that found the lock held by
	// another connection; LockWaitNanos accumulates the blocked time.
	LockWaits     atomic.Int64
	LockWaitNanos atomic.Int64
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	RowsScanned  int64
	RowsJoined   int64
	RowsGrouped  int64
	RowsInserted int64
	RowsUpdated  int64
	RowsDeleted  int64
	Statements   int64
	LockWaits    int64
	LockWait     time.Duration
}

// New creates an empty engine.
func New(cfg Config) *Engine {
	if cfg.Backend == 0 {
		cfg.Backend = storage.KindHeap
	}
	e := &Engine{
		cfg:    cfg,
		tables: make(map[string]*Table),
		views:  make(map[string]*view),
	}
	switch {
	case cfg.StmtCacheSize > 0:
		e.stmts = newStmtCache(cfg.StmtCacheSize)
	case cfg.StmtCacheSize == 0:
		e.stmts = newStmtCache(defaultStmtCacheSize)
	}
	if w := effectiveWorkers(cfg); w > 1 {
		e.pool = newWorkerPool(w)
	}
	if cfg.Backend == storage.KindDisk && cfg.DataDir != "" {
		e.recoverErr = e.recoverDiskCatalog()
	}
	return e
}

// Workers reports the effective intra-query parallelism degree.
func (e *Engine) Workers() int {
	if e.pool == nil {
		return 1
	}
	return e.pool.size
}

// Dialect reports the engine's SQL dialect profile.
func (e *Engine) Dialect() sqlparser.Dialect { return e.cfg.Dialect }

// Backend reports the storage backend kind.
func (e *Engine) Backend() storage.Kind { return e.cfg.Backend }

// Stats returns a snapshot of the logical work counters.
func (e *Engine) Stats() StatsSnapshot {
	return StatsSnapshot{
		RowsScanned:  e.stats.RowsScanned.Load(),
		RowsJoined:   e.stats.RowsJoined.Load(),
		RowsGrouped:  e.stats.RowsGrouped.Load(),
		RowsInserted: e.stats.RowsInserted.Load(),
		RowsUpdated:  e.stats.RowsUpdated.Load(),
		RowsDeleted:  e.stats.RowsDeleted.Load(),
		Statements:   e.stats.Statements.Load(),
		LockWaits:    e.stats.LockWaits.Load(),
		LockWait:     time.Duration(e.stats.LockWaitNanos.Load()),
	}
}

// VecStats reports the vectorized execution counters: batch windows
// run on the columnar path, and windows that fell back to
// row-at-a-time execution.
func (e *Engine) VecStats() (batches, fallbacks int64) {
	return e.vecBatches.Load(), e.vecFallbacks.Load()
}

// SetMetrics attaches a registry; the engine then reports statement
// latency (engine_statement_seconds), statement counts
// (engine_statements_total) and lock contention
// (engine_lock_waits_total, engine_lock_wait_seconds) into it. The disk
// backend additionally reports page I/O and buffer-pool hit rate. Pass
// nil to detach.
func (e *Engine) SetMetrics(r *obs.Registry) {
	e.metrics.Store(r)
	e.pagerMu.Lock()
	if e.pager != nil {
		e.pager.SetMetrics(r)
	}
	e.pagerMu.Unlock()
}

// newStore builds a fresh store of the configured backend. name is the
// catalog name of the owning table; the disk backend derives its file
// names from it.
func (e *Engine) newStore(name string) (storage.Store, error) {
	switch e.cfg.Backend {
	case storage.KindBTree:
		return btree.New(), nil
	case storage.KindLSM:
		return lsm.New(), nil
	case storage.KindDisk:
		db, err := e.pagerDB()
		if err != nil {
			return nil, err
		}
		return db.CreateStore(name)
	default:
		return storage.NewHeap(), nil
	}
}

// pagerDB opens the durable backend on first use.
func (e *Engine) pagerDB() (*pager.DB, error) {
	e.pagerMu.Lock()
	defer e.pagerMu.Unlock()
	if e.pager != nil {
		return e.pager, nil
	}
	dir := e.cfg.DataDir
	if dir == "" {
		d, err := os.MkdirTemp("", "sqloop-pager-*")
		if err != nil {
			return nil, err
		}
		dir = d
		e.pagerTemp = true
	}
	db, err := pager.OpenDB(dir, pager.Options{
		BufferPoolPages: e.cfg.BufferPoolPages,
		Metrics:         e.metrics.Load(),
	})
	if err != nil {
		if e.pagerTemp {
			os.RemoveAll(dir)
			e.pagerTemp = false
		}
		return nil, err
	}
	e.pager, e.pagerDir = db, dir
	e.startCheckpointer()
	return db, nil
}

// startCheckpointer launches the background WAL checkpointer. Called
// with pagerMu held, once the pager is open; a no-op unless
// Config.WALCheckpointBytes is set.
func (e *Engine) startCheckpointer() {
	if e.ckptStop != nil || e.cfg.WALCheckpointBytes <= 0 {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	e.ckptStop, e.ckptDone = stop, done
	go func() {
		defer close(done)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				e.checkpointOversized()
			}
		}
	}()
}

// checkpointOversized checkpoints every disk table whose write-ahead
// log has grown past Config.WALCheckpointBytes. It takes each table's
// write lock for the duration of its checkpoint, so a checkpoint never
// observes a statement's partial mutations; the pager's own Commit at
// statement boundaries means the flushed state is always consistent.
func (e *Engine) checkpointOversized() {
	e.mu.RLock()
	tables := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.RUnlock()
	for _, t := range tables {
		t.mu.Lock()
		if ds, ok := t.store.(*pager.DiskStore); ok && ds.WALSize() > e.cfg.WALCheckpointBytes {
			// A dropped or concurrently-closed store errors here; skipping
			// is harmless — the next tick retries live tables.
			_ = ds.Checkpoint()
		}
		t.mu.Unlock()
	}
}

// Checkpoint flushes the disk backend's dirty pages and truncates its
// write-ahead logs, bounding recovery replay. A no-op for the
// in-memory backends and before the first disk table exists.
func (e *Engine) Checkpoint() error {
	e.pagerMu.Lock()
	db := e.pager
	e.pagerMu.Unlock()
	if db == nil {
		return nil
	}
	return db.Checkpoint()
}

// Close drains the worker pool (in-flight parallel morsels finish;
// queries started after Close run serially), stops the background
// checkpointer, then releases the disk backend's files (flushing dirty
// state first) and removes the data directory when the engine created
// it as a temp dir. Safe to call more than once.
func (e *Engine) Close() error {
	if e.pool != nil {
		e.pool.close()
	}
	e.pagerMu.Lock()
	defer e.pagerMu.Unlock()
	if e.ckptStop != nil {
		close(e.ckptStop)
		<-e.ckptDone
		e.ckptStop, e.ckptDone = nil, nil
	}
	if e.pager == nil {
		return nil
	}
	err := e.pager.Close()
	if e.pagerTemp {
		if rmErr := os.RemoveAll(e.pagerDir); rmErr != nil && err == nil {
			err = rmErr
		}
	}
	e.pager = nil
	return err
}

// Table is one base table: schema, primary data store and secondary hash
// indexes, guarded by its own RW mutex so different tables proceed in
// parallel across sessions.
type Table struct {
	name   string
	schema *sqltypes.Schema
	pkCol  int // -1 when keys are synthetic rowids

	mu      sync.RWMutex
	store   storage.Store
	indexes map[string]*hashIndex // by index name
}

// hashIndex maps a column value to the set of primary keys holding it.
type hashIndex struct {
	name    string
	col     int
	buckets map[sqltypes.Key]map[sqltypes.Key]struct{}
}

func newHashIndex(name string, col int) *hashIndex {
	return &hashIndex{
		name:    name,
		col:     col,
		buckets: make(map[sqltypes.Key]map[sqltypes.Key]struct{}),
	}
}

func (ix *hashIndex) add(pk sqltypes.Key, row sqltypes.Row) {
	v := row[ix.col].MapKey()
	b, ok := ix.buckets[v]
	if !ok {
		b = make(map[sqltypes.Key]struct{})
		ix.buckets[v] = b
	}
	b[pk] = struct{}{}
}

func (ix *hashIndex) remove(pk sqltypes.Key, row sqltypes.Row) {
	v := row[ix.col].MapKey()
	if b, ok := ix.buckets[v]; ok {
		delete(b, pk)
		if len(b) == 0 {
			delete(ix.buckets, v)
		}
	}
}

// lookupTable returns the table (case-insensitive) if it exists.
func (e *Engine) lookupTable(name string) (*Table, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[strings.ToLower(name)]
	return t, ok
}

// lookupView returns the view (case-insensitive) if it exists.
func (e *Engine) lookupView(name string) (*view, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v, ok := e.views[strings.ToLower(name)]
	return v, ok
}

// TableNames lists tables (for tools/tests), sorted.
func (e *Engine) TableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TableLen returns the number of rows of a table (0 when absent).
func (e *Engine) TableLen(name string) int {
	t, ok := e.lookupTable(name)
	if !ok {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.store.Len()
}

// Result is the outcome of one statement.
type Result struct {
	// Columns names the result columns (empty for DML).
	Columns []string
	// Rows holds the result rows for queries.
	Rows []sqltypes.Row
	// RowsAffected counts rows changed by DML. For UPDATE it counts rows
	// whose values actually changed (MySQL semantics) — SQLoop's
	// "UNTIL n UPDATES" termination depends on this.
	RowsAffected int64
}

// Session is one client connection. Sessions are not safe for concurrent
// use by multiple goroutines (like database/sql connections).
type Session struct {
	eng *Engine
	tx  *txState
	// costDebt accumulates simulated latency not yet slept. Sleeping in
	// quanta instead of per statement keeps timer jitter (which is
	// per-sleep and systematically positive) from swamping the model.
	costDebt time.Duration

	// prepared holds the session's open prepared statements by handle
	// (see prepare.go). Lazily allocated; handles die with the session.
	prepared map[int64]*preparedStmt
	nextStmt int64
}

// costQuantum is the minimum accumulated charge worth one real sleep.
const costQuantum = 2 * time.Millisecond

// txState is an open explicit transaction: an undo log replayed on
// rollback. Isolation is read-committed at statement granularity, which
// satisfies SQLoop's OLAP assumption (§IV-C).
type txState struct {
	undo []undoRec
}

type undoKind int

const (
	undoInsert undoKind = iota + 1
	undoUpdate
	undoDelete
)

type undoRec struct {
	kind  undoKind
	table *Table
	key   sqltypes.Key
	old   sqltypes.Row
}

// NewSession opens a connection to the engine.
func (e *Engine) NewSession() *Session { return &Session{eng: e} }

// Exec parses (through the statement cache) and executes one statement
// with optional bind parameters.
func (s *Session) Exec(sql string, args ...sqltypes.Value) (*Result, error) {
	st, _, progs, err := s.eng.cachedParse(sql)
	if err != nil {
		return nil, err
	}
	return s.execStmt(st, args, progs)
}

// ExecScript executes a semicolon-separated script, returning the result
// of the last statement.
func (s *Session) ExecScript(sql string) (*Result, error) {
	stmts, err := sqlparser.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	var res *Result
	for _, st := range stmts {
		res, err = s.ExecStmt(st, nil)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ExecStmt executes an already-parsed statement.
func (s *Session) ExecStmt(st sqlparser.Statement, args []sqltypes.Value) (*Result, error) {
	return s.execStmt(st, args, nil)
}

// execStmt executes a parsed statement, optionally reusing compiled
// expression programs cached on its statement-cache entry.
func (s *Session) execStmt(st sqlparser.Statement, args []sqltypes.Value, progs *progCache) (*Result, error) {
	s.eng.stats.Statements.Add(1)
	start := time.Now()
	x := &executor{sess: s, eng: s.eng, args: args, progs: progs}
	res, err := x.run(st)
	x.chargeCost()
	if r := s.eng.metrics.Load(); r != nil {
		r.Counter("engine_statements_total").Inc()
		r.Histogram("engine_statement_seconds").Observe(time.Since(start))
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Begin opens an explicit transaction (no-op if one is open).
func (s *Session) begin() {
	if s.tx == nil {
		s.tx = &txState{}
	}
}

// commit closes the open transaction, discarding undo state.
func (s *Session) commit() { s.tx = nil }

// rollback undoes every mutation recorded in the open transaction.
func (s *Session) rollback() {
	if s.tx == nil {
		return
	}
	undo := s.tx.undo
	s.tx = nil
	touched := make(map[*Table]struct{})
	for i := len(undo) - 1; i >= 0; i-- {
		r := undo[i]
		touched[r.table] = struct{}{}
		r.table.mu.Lock()
		switch r.kind {
		case undoInsert:
			if row, ok := r.table.store.Get(r.key); ok {
				r.table.removeFromIndexes(r.key, row)
				r.table.store.Delete(r.key)
			}
		case undoUpdate:
			if row, ok := r.table.store.Get(r.key); ok {
				r.table.removeFromIndexes(r.key, row)
				r.table.store.Update(r.key, r.old)
				r.table.addToIndexes(r.key, r.old)
			}
		case undoDelete:
			if _, ok := r.table.store.Get(r.key); !ok {
				_ = r.table.store.Insert(r.key, r.old)
				r.table.addToIndexes(r.key, r.old)
			}
		}
		r.table.mu.Unlock()
	}
	// The undo writes themselves must be durable before anyone else sees
	// the rolled-back state.
	for t := range touched {
		t.mu.Lock()
		t.commitStore()
		t.mu.Unlock()
	}
}

// record notes a mutation for rollback if a transaction is open.
func (s *Session) record(r undoRec) {
	if s.tx != nil {
		s.tx.undo = append(s.tx.undo, r)
	}
}

func (t *Table) addToIndexes(pk sqltypes.Key, row sqltypes.Row) {
	for _, ix := range t.indexes {
		ix.add(pk, row)
	}
}

func (t *Table) removeFromIndexes(pk sqltypes.Key, row sqltypes.Row) {
	for _, ix := range t.indexes {
		ix.remove(pk, row)
	}
}

// lockTables acquires the locks for the statement's read and write sets
// in a global order (by table name) to stay deadlock free, and returns
// an unlock func. Acquisitions that find a lock held by another
// connection are counted as lock waits, with the blocked time
// accumulated into Stats and the attached metrics registry.
func (e *Engine) lockTables(reads, writes []*Table) func() {
	type lk struct {
		t     *Table
		write bool
	}
	m := make(map[string]*lk, len(reads)+len(writes))
	for _, t := range reads {
		m[t.name] = &lk{t: t}
	}
	for _, t := range writes {
		if e, ok := m[t.name]; ok {
			e.write = true
		} else {
			m[t.name] = &lk{t: t, write: true}
		}
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	locked := make([]*lk, 0, len(names))
	for _, n := range names {
		l := m[n]
		// TryLock distinguishes contended acquisitions without taxing the
		// uncontended fast path.
		if l.write {
			if !l.t.mu.TryLock() {
				w := time.Now()
				l.t.mu.Lock()
				e.noteLockWait(time.Since(w))
			}
		} else {
			if !l.t.mu.TryRLock() {
				w := time.Now()
				l.t.mu.RLock()
				e.noteLockWait(time.Since(w))
			}
		}
		locked = append(locked, l)
	}
	return func() {
		for i := len(locked) - 1; i >= 0; i-- {
			if locked[i].write {
				// Statement boundary: a durable store's mutations become
				// crash-safe before the write lock is released, so no other
				// connection can observe rows a crash could take back.
				locked[i].t.commitStore()
				locked[i].t.mu.Unlock()
			} else {
				locked[i].t.mu.RUnlock()
			}
		}
	}
}

// commitStore commits the table's store when the backend is durable.
// Must be called with the table's write lock held. Storage I/O failure
// at a commit point is not recoverable mid-statement.
func (t *Table) commitStore() {
	if c, ok := t.store.(storage.Committer); ok {
		if err := c.Commit(); err != nil {
			panic(fmt.Sprintf("engine: commit of table %q failed: %v", t.name, err))
		}
	}
}

// noteLockWait records one contended lock acquisition.
func (e *Engine) noteLockWait(d time.Duration) {
	e.stats.LockWaits.Add(1)
	e.stats.LockWaitNanos.Add(int64(d))
	if r := e.metrics.Load(); r != nil {
		r.Counter("engine_lock_waits_total").Inc()
		r.Histogram("engine_lock_wait_seconds").Observe(d)
	}
}

// CostModel converts logical work into simulated per-connection latency.
// It stands in for the paper's 32-core database server: each connection
// is charged wall-clock time proportional to the rows it touched, and
// the charges of different connections overlap (they sleep
// independently), exactly as separate server processes would.
type CostModel struct {
	PerStatement time.Duration // fixed per-statement overhead (round trip, parse, plan)
	PerRowScan   time.Duration
	PerRowJoin   time.Duration
	PerRowGroup  time.Duration
	PerRowWrite  time.Duration // insert/update/delete
	// Scale multiplies every charge; profiles use it to reflect the
	// relative speeds the paper observed across engines.
	Scale float64
}

// DefaultCost returns the calibrated cost model for a profile. The
// relative scales follow the paper's Fig. 4–6 ordering: the PostgreSQL
// profile is fastest, MariaDB next, MySQL slowest.
func DefaultCost(d sqlparser.Dialect) *CostModel {
	scale := 1.0
	switch d {
	case sqlparser.DialectMySim:
		scale = 3.0
	case sqlparser.DialectMariaSim:
		scale = 2.2
	}
	// Magnitudes follow measured row-at-a-time executor throughputs of
	// the simulated engines (roughly a microsecond per row through a
	// join, a couple hundred microseconds per statement round trip), so
	// per-row work dominates per-statement overhead at realistic
	// partition sizes — as it did on the paper's testbed.
	return &CostModel{
		PerStatement: 150 * time.Microsecond,
		PerRowScan:   800 * time.Nanosecond,
		PerRowJoin:   1500 * time.Nanosecond,
		PerRowGroup:  800 * time.Nanosecond,
		PerRowWrite:  2 * time.Microsecond,
		Scale:        scale,
	}
}

// charge computes the latency for the given work counters.
func (c *CostModel) charge(w workCounters) time.Duration {
	if c == nil {
		return 0
	}
	d := c.PerStatement +
		time.Duration(w.scanned)*c.PerRowScan +
		time.Duration(w.joined)*c.PerRowJoin +
		time.Duration(w.grouped)*c.PerRowGroup +
		time.Duration(w.written)*c.PerRowWrite
	if c.Scale > 0 {
		d = time.Duration(float64(d) * c.Scale)
	}
	return d
}

// workCounters tallies one statement's logical work.
type workCounters struct {
	scanned, joined, grouped, written int64
}

// ErrTableNotFound is returned when a statement references a missing
// table or view.
type ErrTableNotFound struct{ Name string }

func (e *ErrTableNotFound) Error() string {
	return fmt.Sprintf("engine: table or view %q does not exist", e.Name)
}

// ErrColumnNotFound is returned when an expression references an unknown
// column.
type ErrColumnNotFound struct{ Name string }

func (e *ErrColumnNotFound) Error() string {
	return fmt.Sprintf("engine: column %q does not exist", e.Name)
}
