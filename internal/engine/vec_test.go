package engine

import (
	"errors"
	"testing"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
)

// newVecTestPair returns two sessions over identically-loaded engines,
// both with the expression compiler on: one running the batch
// (vectorized) path, one pinned to row-at-a-time execution.
func newVecTestPair(t *testing.T, load func(t *testing.T, s *Session)) (vecOn, vecOff *Session) {
	t.Helper()
	vecOn = New(Config{}).NewSession()
	vecOff = New(Config{DisableVectorize: true}).NewSession()
	load(t, vecOn)
	load(t, vecOff)
	return vecOn, vecOff
}

// TestVectorizedVsRowEquivalence pins the batch path to bit-identical
// results against row-at-a-time execution over the full compile-test
// corpus plus vec-specific shapes (batch-boundary row counts, LIKE
// kernels, logical narrowing, hash-sensitive group keys).
func TestVectorizedVsRowEquivalence(t *testing.T) {
	corpus := []string{
		// Filters through the native kernels.
		`SELECT id, a FROM nums WHERE a * 2 + 1 > 7 ORDER BY id`,
		`SELECT id FROM nums WHERE a IS NULL ORDER BY id`,
		`SELECT id FROM nums WHERE NOT (flag AND a > 3) ORDER BY id`,
		`SELECT id FROM nums WHERE a IN (1, 3, 5, NULL) ORDER BY id`,
		`SELECT id FROM nums WHERE f BETWEEN 3.0 AND 12.5 ORDER BY id`,
		`SELECT id FROM nums WHERE flag OR a > 6 ORDER BY id`,
		`SELECT id FROM nums WHERE name LIKE 'row_1%' ORDER BY id`,
		`SELECT id FROM nums WHERE name NOT LIKE '%_3' ORDER BY id`,
		// Projections: mixed kernel/adapter items, NULL columns.
		`SELECT id, a * 2, f + 0.5, name FROM nums ORDER BY id`,
		`SELECT id, CASE WHEN a > 5 THEN 'hi' ELSE 'lo' END, COALESCE(a, -1) FROM nums ORDER BY id`,
		`SELECT id, CAST(f AS BIGINT), UPPER(name) FROM nums ORDER BY id`,
		// Grouping: expression keys, NULL keys, hash-sensitive floats.
		`SELECT a, COUNT(*), SUM(f) FROM nums GROUP BY a ORDER BY 1`,
		`SELECT a % 3, MIN(f), MAX(f), AVG(f) FROM nums WHERE a IS NOT NULL GROUP BY a % 3 ORDER BY 1`,
		`SELECT a, COUNT(*) FROM nums GROUP BY a HAVING COUNT(*) > 4 ORDER BY a`,
		`SELECT flag, COUNT(DISTINCT a) FROM nums GROUP BY flag ORDER BY 1`,
		`SELECT k, COUNT(*), SUM(v) FROM mix GROUP BY k ORDER BY 2, 3`,
		`SELECT COUNT(*), SUM(a), MIN(f), MAX(name), AVG(f) FROM nums`,
		`SELECT SUM(a) FROM nums WHERE a > 100`, // empty input, global aggregate
		// DISTINCT and set operations over batch-projected outputs.
		`SELECT DISTINCT a FROM nums ORDER BY 1`,
		`SELECT DISTINCT k FROM mix ORDER BY 1`,
		`SELECT a FROM nums UNION SELECT a FROM other ORDER BY 1`,
		`SELECT a FROM nums EXCEPT SELECT a FROM other ORDER BY 1`,
		// Hash-join probe: plain, residual, left join, NULL keys.
		`SELECT n.id, o.label FROM nums AS n JOIN other AS o ON n.a = o.a ORDER BY n.id, o.label`,
		`SELECT n.id, o.label FROM nums AS n JOIN other AS o ON n.a = o.a AND n.id > 10 ORDER BY n.id, o.label`,
		`SELECT n.id, o.label FROM nums AS n LEFT JOIN other AS o ON n.a = o.a ORDER BY n.id, o.label`,
		`SELECT n.id, o.a FROM nums AS n JOIN other AS o ON n.a + 1 = o.a + 1 ORDER BY n.id, o.a`,
		// ORDER BY that must keep row environments (disables batch
		// projection) next to ordinal/alias sorts that drop them.
		`SELECT id, a AS alias_a FROM nums ORDER BY alias_a, id`,
		`SELECT id, f FROM nums ORDER BY 2 DESC, 1`,
		`SELECT id FROM nums ORDER BY a * -1, id DESC`,
		// Subqueries ride the adapter nodes.
		`SELECT id FROM nums WHERE a = (SELECT MIN(a) FROM nums) ORDER BY id`,
		`SELECT id FROM nums WHERE EXISTS (SELECT 1 FROM other WHERE other.a = nums.a) ORDER BY id`,
		// LIMIT/OFFSET over batch-projected outputs.
		`SELECT id FROM nums ORDER BY id LIMIT 5 OFFSET 3`,
		`SELECT id FROM nums LIMIT 0`,
	}
	vecOn, vecOff := newVecTestPair(t, loadCompileCorpus)
	for _, q := range corpus {
		got, err1 := vecOn.Exec(q)
		want, err2 := vecOff.Exec(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s:\nvec err = %v\nrow err = %v", q, err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("%s: error mismatch:\nvec: %v\nrow: %v", q, err1, err2)
			}
			continue
		}
		if g, w := renderResult(got), renderResult(want); g != w {
			t.Fatalf("%s:\nvec:\n%s\nrow:\n%s", q, g, w)
		}
	}
	if batches, _ := vecOn.eng.VecStats(); batches == 0 {
		t.Errorf("vectorized engine ran zero batches over the corpus")
	}
	if batches, fallbacks := vecOff.eng.VecStats(); batches != 0 || fallbacks != 0 {
		t.Errorf("DisableVectorize engine ran %d batches, %d fallbacks", batches, fallbacks)
	}
}

// TestVecBatchBoundaries runs batch-kernel queries over row counts
// straddling the window size (empty, one short window, exactly one
// window, one full plus a one-row tail).
func TestVecBatchBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 1023, 1024, 1025, 2500} {
		vecOn, vecOff := newVecTestPair(t, func(t *testing.T, s *Session) {
			mustExec(t, s, `CREATE TABLE t (a BIGINT, b BIGINT)`)
			for i := 0; i < n; i++ {
				mustExec(t, s, `INSERT INTO t VALUES (?, ?)`,
					sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i%13)))
			}
		})
		for _, q := range []string{
			`SELECT a FROM t WHERE b < 7 AND a % 3 = 1 ORDER BY a`,
			`SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b ORDER BY 1`,
			`SELECT COUNT(*) FROM t AS x JOIN t AS y ON x.a = y.a + 1`,
		} {
			got := renderResult(mustExec(t, vecOn, q))
			want := renderResult(mustExec(t, vecOff, q))
			if got != want {
				t.Fatalf("n=%d %s:\nvec:\n%s\nrow:\n%s", n, q, got, want)
			}
		}
	}
}

// TestVecShortCircuitErrorSuppression: AND/OR narrowing must not
// evaluate the right side on rows the left side already decided — the
// row path's short-circuit suppresses a division by zero there, so the
// batch path has to as well.
func TestVecShortCircuitErrorSuppression(t *testing.T) {
	vecOn, vecOff := newVecTestPair(t, func(t *testing.T, s *Session) {
		mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
		mustExec(t, s, `INSERT INTO t VALUES (0), (1), (2), (0), (5)`)
	})
	for _, q := range []string{
		`SELECT a FROM t WHERE a != 0 AND 10 % a >= 0 ORDER BY a`,
		`SELECT a FROM t WHERE a = 0 OR 10 / a > 1 ORDER BY a`,
	} {
		got, err1 := vecOn.Exec(q)
		want, err2 := vecOff.Exec(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: vec err %v, row err %v", q, err1, err2)
		}
		if g, w := renderResult(got), renderResult(want); g != w {
			t.Fatalf("%s:\nvec:\n%s\nrow:\n%s", q, g, w)
		}
	}
}

// TestVecFallbackReproducesRowErrors: when a kernel errors mid-batch,
// the window re-runs row-at-a-time and must surface exactly the row
// path's error.
func TestVecFallbackReproducesRowErrors(t *testing.T) {
	vecOn, vecOff := newVecTestPair(t, func(t *testing.T, s *Session) {
		mustExec(t, s, `CREATE TABLE t (a BIGINT, b BIGINT)`)
		mustExec(t, s, `INSERT INTO t VALUES (1, 2), (2, 0), (3, 4)`)
	})
	for _, q := range []string{
		`SELECT a FROM t WHERE 10 / b > 1`,       // filter kernel error
		`SELECT a, 10 / b FROM t`,                // projection kernel error
		`SELECT b, SUM(10 / b) FROM t GROUP BY b`, // grouped argument error
		`SELECT x.a FROM t AS x JOIN t AS y ON 10 / x.b = y.a`, // probe key error
	} {
		_, err1 := vecOn.Exec(q)
		_, err2 := vecOff.Exec(q)
		if err1 == nil || err2 == nil {
			t.Fatalf("%s: expected errors, vec %v, row %v", q, err1, err2)
		}
		if err1.Error() != err2.Error() {
			t.Fatalf("%s: error mismatch:\nvec: %v\nrow: %v", q, err1, err2)
		}
	}
	if _, fallbacks := vecOn.eng.VecStats(); fallbacks == 0 {
		t.Errorf("expected batch fallbacks, got none")
	}
}

// TestVecDisabledByExprCompile: the batch path rides on compiled
// programs, so DisableExprCompile alone must keep it off.
func TestVecDisabledByExprCompile(t *testing.T) {
	eng := New(Config{DisableExprCompile: true})
	s := eng.NewSession()
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1), (2), (3)`)
	mustExec(t, s, `SELECT a * 2 FROM t WHERE a > 1 ORDER BY a`)
	if batches, _ := eng.VecStats(); batches != 0 {
		t.Errorf("DisableExprCompile engine ran %d batches", batches)
	}
}

// mutateSelect parses sql and returns the statement plus its Select
// core for AST surgery (the parser rejects negative LIMIT/OFFSET
// literals, so the panics only reproduce via programmatically-built
// trees through ExecStmt).
func mutateSelect(t *testing.T, sql string) (sqlparser.Statement, *sqlparser.Select) {
	t.Helper()
	st, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := st.(*sqlparser.SelectStmt)
	if !ok {
		t.Fatalf("parsed %T, want *SelectStmt", st)
	}
	core, ok := sel.Body.(*sqlparser.Select)
	if !ok {
		t.Fatalf("body %T, want *Select", sel.Body)
	}
	return st, core
}

// TestNegativeLimitOffsetTypedError: negative LIMIT/OFFSET used to
// panic slicing the output ("slice bounds out of range"); they must
// return ErrInvalidLimit instead.
func TestNegativeLimitOffsetTypedError(t *testing.T) {
	s := New(Config{}).NewSession()
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1), (2), (3)`)

	st, core := mutateSelect(t, `SELECT a FROM t LIMIT 1`)
	*core.Limit = -1
	if _, err := s.ExecStmt(st, nil); err == nil {
		t.Fatal("negative LIMIT: expected error, got nil")
	} else {
		var il *ErrInvalidLimit
		if !errors.As(err, &il) || il.Clause != "LIMIT" || il.N != -1 {
			t.Fatalf("negative LIMIT: got %v, want ErrInvalidLimit{LIMIT, -1}", err)
		}
	}

	st, core = mutateSelect(t, `SELECT a FROM t LIMIT 1 OFFSET 1`)
	*core.Offset = -1
	if _, err := s.ExecStmt(st, nil); err == nil {
		t.Fatal("negative OFFSET: expected error, got nil")
	} else {
		var il *ErrInvalidLimit
		if !errors.As(err, &il) || il.Clause != "OFFSET" || il.N != -1 {
			t.Fatalf("negative OFFSET: got %v, want ErrInvalidLimit{OFFSET, -1}", err)
		}
	}

	// Set operations share the slicing code path.
	stu, err := sqlparser.Parse(`SELECT a FROM t UNION ALL SELECT a FROM t LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	setOp, ok := stu.(*sqlparser.SelectStmt).Body.(*sqlparser.SetOp)
	if !ok {
		t.Fatalf("body %T, want *SetOp", stu.(*sqlparser.SelectStmt).Body)
	}
	if setOp.Limit == nil {
		t.Fatal("UNION LIMIT not parsed onto the set operation")
	}
	*setOp.Limit = -1
	if _, err := s.ExecStmt(stu, nil); err == nil {
		t.Fatal("negative UNION LIMIT: expected error, got nil")
	} else {
		var il *ErrInvalidLimit
		if !errors.As(err, &il) || il.Clause != "LIMIT" {
			t.Fatalf("negative UNION LIMIT: got %v, want ErrInvalidLimit", err)
		}
	}

	// LIMIT 0 is valid and returns an empty relation.
	res, err := s.Exec(`SELECT a FROM t LIMIT 0`)
	if err != nil {
		t.Fatalf("LIMIT 0: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(res.Rows))
	}
}

// --- micro-benchmarks -------------------------------------------------

// benchStatementVec runs one prepared statement with the batch path on
// and off (both compiled) as vec/rowpath sub-benchmarks.
func benchStatementVec(b *testing.B, sql string) {
	for name, disable := range map[string]bool{"rowpath": true, "vec": false} {
		b.Run(name, func(b *testing.B) {
			s := New(Config{DisableVectorize: disable}).NewSession()
			exec := func(q string, args ...sqltypes.Value) {
				if _, err := s.Exec(q, args...); err != nil {
					b.Fatalf("Exec(%q): %v", q, err)
				}
			}
			exec(`CREATE TABLE t (a BIGINT, b BIGINT)`)
			exec(`CREATE TABLE u (a BIGINT, b BIGINT)`)
			for i := 0; i < 1000; i++ {
				exec(`INSERT INTO t VALUES (?, ?)`, sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64((i*37)%1000)))
			}
			for i := 0; i < 250; i++ {
				exec(`INSERT INTO u VALUES (?, ?)`, sqltypes.NewInt(int64(i*3)), sqltypes.NewInt(int64(i)))
			}
			h, err := s.Prepare(sql)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.ExecPrepared(h, nil); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ExecPrepared(h, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVecFilter(b *testing.B) {
	benchStatementVec(b, `SELECT a FROM t WHERE b < 500 AND a % 7 = 1`)
}

func BenchmarkVecGroupBy(b *testing.B) {
	benchStatementVec(b, `SELECT a % 10, COUNT(*), SUM(b) FROM t GROUP BY a % 10`)
}

func BenchmarkVecJoinProbe(b *testing.B) {
	benchStatementVec(b, `SELECT COUNT(*) FROM t JOIN u ON t.a = u.a WHERE u.b >= 0`)
}
