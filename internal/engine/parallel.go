package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
	"sqloop/internal/vec"
)

// This file implements morsel-driven intra-query parallelism (the
// HyPer-style scheme) over the vectorized operator boundary: the base
// input of a filter, projection, grouping, or hash-join build/probe is
// split into fixed-size row ranges ("morsels"), each morsel runs the
// existing serial operator body on a worker, and the per-morsel outputs
// are reassembled in morsel order. Results, row order, error identity
// and error ordering are bit-identical to the serial path; see
// DESIGN.md, "Morsel-driven parallelism".

// morselRows is the dispatch granule. It must stay a multiple of
// vec.BatchSize so every morsel's window boundaries coincide with the
// serial cursor's — the batch/fallback behaviour of each window is then
// identical in both modes. A variable so tests can lower it to exercise
// the parallel path on small fixtures.
var morselRows = 4 * vec.BatchSize

// parThresholdMorsels is the minimum number of morsels worth fanning
// out; below it the dispatch overhead cannot pay for itself.
const parThresholdMorsels = 2

// effectiveWorkers resolves the configured worker count: DisableParallel
// forces the serial path, 0 means one worker per CPU, and 1 is exactly
// today's serial execution.
func effectiveWorkers(cfg Config) int {
	if cfg.DisableParallel {
		return 1
	}
	n := cfg.Workers
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// workerPool is the engine-wide pool behind every parallel operator.
// Submission never blocks: a task is handed to an idle worker or
// rejected, and the dispatching goroutine always runs its own claim
// loop, so a query makes progress even when every worker is busy (or
// the pool is closed mid-query) — the property that makes nested
// parallel regions (subqueries inside morsels) deadlock-free.
type workerPool struct {
	size  int
	tasks chan func()

	mu     sync.RWMutex // guards closed vs. submit's channel send
	closed bool
	wg     sync.WaitGroup
}

// newWorkerPool starts size-1 helper goroutines (the dispatching
// goroutine itself is the size'th worker).
func newWorkerPool(size int) *workerPool {
	p := &workerPool{size: size, tasks: make(chan func())}
	for i := 0; i < size-1; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t()
			}
		}()
	}
	return p
}

// trySubmit hands t to an idle worker, reporting false when none is
// free or the pool is shut down. The read lock excludes close(), so the
// send can never hit a closed channel.
func (p *workerPool) trySubmit(t func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- t:
		return true
	default:
		return false
	}
}

// close drains the pool: no new tasks are accepted, in-flight tasks run
// to completion, and every worker goroutine has exited on return.
func (p *workerPool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}

// parallelOK reports whether an operator over n input rows should fan
// out. Parallel regions ride on the hashed row index (partial-result
// merging needs its dense key table), so disabling expression
// compilation disables them too, exactly like vectorization.
func (x *executor) parallelOK(n int) bool {
	return x.eng.pool != nil &&
		!x.eng.cfg.DisableExprCompile &&
		n >= parThresholdMorsels*morselRows
}

// morselCount is the number of morsels covering n rows.
func morselCount(n int) int {
	return (n + morselRows - 1) / morselRows
}

// fork creates a child executor for one morsel: it shares the session,
// engine, bind args, CTE scope and compiled-program cache (all safe for
// concurrent use), but gets private work counters and a private
// IN-subquery cache, which are plain (unsynchronized) state.
func (x *executor) fork() *executor {
	return &executor{sess: x.sess, eng: x.eng, args: x.args, ctes: x.ctes, progs: x.progs}
}

// chargeMorsel sleeps the simulated latency of one morsel's work on the
// calling goroutine, immediately and without the per-statement
// constant. Charges of concurrent workers overlap in time — the same
// mechanism that lets separate connections model a multi-core server —
// so a parallel region's simulated latency shrinks with the worker
// count while the total charged work stays what the serial path
// charges. The parent never re-merges charged counters, so nothing is
// billed twice.
func (x *executor) chargeMorsel() {
	c := x.eng.cfg.Cost
	if c == nil {
		return
	}
	if d := c.charge(x.work) - c.charge(workCounters{}); d > 0 {
		sleep(d)
	}
}

// takeScanCharge moves the base scan's per-row cost into the parallel
// region: scanNamed already charged the full scan to the statement, so
// the region deducts it here and each morsel re-charges (and sleeps)
// its own share concurrently. Only full-table scans set scanCharged,
// and only the first region consuming the source takes the transfer.
func (x *executor) takeScanCharge(src *source) bool {
	if !src.scanCharged || x.eng.cfg.Cost == nil {
		return false
	}
	src.scanCharged = false
	x.work.scanned -= int64(len(src.rows))
	return true
}

// parRun partitions n input rows into morsels and executes fn(m, lo,
// hi) over them on the worker pool plus the calling goroutine. Morsels
// are claimed from an atomic cursor; the calling goroutine always runs
// a claim loop itself, so completion never depends on pool capacity.
//
// Error contract (bit-identical to serial execution): the error of the
// lowest-indexed failing morsel wins. Once some morsel fails, all
// higher-indexed unclaimed morsels are cancelled (their output would be
// discarded anyway), but lower-indexed morsels still run — if one of
// them fails, its error takes precedence, exactly as the serial scan
// would have hit it first.
func (x *executor) parRun(n int, fn func(m, lo, hi int) error) error {
	nm := morselCount(n)
	var next atomic.Int64
	var errIdx atomic.Int64 // lowest failing morsel index; nm = none
	errIdx.Store(int64(nm))
	errs := make([]error, nm)
	reg := x.eng.metrics.Load()

	claim := func() {
		for {
			m := int(next.Add(1) - 1)
			if m >= nm {
				return
			}
			if int64(m) > errIdx.Load() {
				continue // cancelled: a lower morsel already failed
			}
			lo := m * morselRows
			hi := lo + morselRows
			if hi > n {
				hi = n
			}
			start := time.Now()
			err := fn(m, lo, hi)
			if reg != nil {
				reg.Counter("sqloop_parallel_morsels_total").Inc()
				reg.Histogram("sqloop_parallel_worker_busy_seconds").Observe(time.Since(start))
			}
			if err != nil {
				errs[m] = err
				for {
					cur := errIdx.Load()
					if int64(m) >= cur || errIdx.CompareAndSwap(cur, int64(m)) {
						break
					}
				}
			}
		}
	}

	var wg sync.WaitGroup
	engaged := 1
	if pool := x.eng.pool; pool != nil {
		helpers := pool.size - 1
		if max := nm - 1; helpers > max {
			helpers = max
		}
		for i := 0; i < helpers; i++ {
			wg.Add(1)
			if !pool.trySubmit(func() { defer wg.Done(); claim() }) {
				wg.Done()
				break // every worker busy (or pool closed): run inline
			}
			engaged++
		}
	}
	if reg != nil {
		reg.Gauge("sqloop_parallel_workers").Set(int64(engaged))
	}
	claim()
	wg.Wait()

	if ei := errIdx.Load(); ei < int64(nm) {
		return errs[ei]
	}
	return nil
}

// vecFilterPar is the morsel-parallel form of vecFilter: each morsel
// runs the serial window loop over its own row range on a child
// executor, and the kept rows are concatenated in morsel order. Because
// morselRows is a multiple of vec.BatchSize, the window boundaries —
// and therefore every window's batch-vs-fallback decision — are the
// same as the serial cursor's.
func (x *executor) vecFilterPar(vp *vplan, where sqlparser.Expr, src *source) ([]sqltypes.Row, error) {
	n := len(src.rows)
	parts := make([][]sqltypes.Row, morselCount(n))
	scan := x.takeScanCharge(src)
	err := x.parRun(n, func(m, lo, hi int) error {
		child := x.fork()
		kept, err := child.vecFilter(vp, where, &source{frame: src.frame, rows: src.rows[lo:hi]})
		if err != nil {
			return err
		}
		if scan {
			child.work.scanned += int64(hi - lo)
		}
		child.chargeMorsel()
		parts[m] = kept
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatRows(parts), nil
}

// vecProjectPar is the morsel-parallel form of vecProject; output rows
// are concatenated in morsel order.
func (x *executor) vecProjectPar(plan *selPlan, src *source) ([]outRow, error) {
	n := len(src.rows)
	parts := make([][]outRow, morselCount(n))
	scan := x.takeScanCharge(src)
	err := x.parRun(n, func(m, lo, hi int) error {
		child := x.fork()
		out, err := child.vecProject(plan, &source{frame: src.frame, rows: src.rows[lo:hi]})
		if err != nil {
			return err
		}
		if scan {
			child.work.scanned += int64(hi - lo)
		}
		child.chargeMorsel()
		parts[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]outRow, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// groupPart is one morsel's local grouping result: its groups, its
// aggregate accumulators, and the local row index whose dense-id key
// table drives the merge.
type groupPart struct {
	groups []*group
	vaggs  []*vecAgg
	ix     *rowIndex
}

// vecGroupPar is the morsel-parallel form of vecGroup: each morsel
// builds a private accumulator table with the serial vecGroup body,
// then the tables are merged in morsel order. Merging local keys in
// morsel order reproduces the serial first-seen dense-id order, so
// group output order, each group's first row and each group's member
// row order are identical to serial execution. Aggregate partials merge
// with computeAggregate's exact semantics (NULL skip, int64-overflow
// promotion to float, MIN/MAX via sqltypes.Compare); a merge-time
// Compare error degrades to ok=false, the same whole-input row-path
// fallback contract the serial vecGroup has.
func (x *executor) vecGroupPar(plan *selPlan, src *source) ([]*group, []*vecAgg, bool) {
	n := len(src.rows)
	parts := make([]groupPart, morselCount(n))
	scan := x.takeScanCharge(src)
	err := x.parRun(n, func(m, lo, hi int) error {
		child := x.fork()
		groups, vaggs, ix, ok := child.vecGroup(plan, &source{frame: src.frame, rows: src.rows[lo:hi]})
		if !ok {
			return errVecFallback
		}
		child.work.grouped += int64(hi - lo)
		if scan {
			child.work.scanned += int64(hi - lo)
		}
		child.chargeMorsel()
		parts[m] = groupPart{groups: groups, vaggs: vaggs, ix: ix}
		return nil
	})
	if err != nil {
		// Whole-input fallback, like serial vecGroup: the caller re-runs
		// the row path, which re-charges its own work — restore the scan
		// charge for the morsels that never charged theirs.
		if scan {
			for m := range parts {
				if parts[m].ix == nil && parts[m].groups == nil {
					lo := m * morselRows
					hi := lo + morselRows
					if hi > n {
						hi = n
					}
					x.work.scanned += int64(hi - lo)
				}
			}
		}
		return nil, nil, false
	}

	nKeys := len(plan.groupBy)
	needRows := !plan.vecAggsAll
	merged := x.newRowIndex(0)
	var groups []*group
	vaggs := make([]*vecAgg, len(plan.vecAggs))
	for i, spec := range plan.vecAggs {
		vaggs[i] = &vecAgg{fc: spec.fc}
	}
	for _, part := range parts {
		for li, lg := range part.groups {
			var gid int
			if nKeys == 0 {
				if len(groups) == 0 {
					groups = append(groups, &group{first: lg.first})
				}
				gid = 0
			} else {
				var isNew bool
				// The local index's key copy is handed over (the part is
				// discarded after the merge), so no re-clone is needed.
				gid, isNew = merged.bucket(part.ix.keys[li], true)
				if isNew {
					groups = append(groups, &group{first: lg.first})
				}
			}
			g := groups[gid]
			g.n += lg.n
			if needRows {
				g.rows = append(g.rows, lg.rows...)
			}
			for ai := range vaggs {
				vaggs[ai].grow(gid)
				if err := vaggs[ai].merge(part.vaggs[ai], li, gid); err != nil {
					x.eng.vecFallbacks.Add(1)
					return nil, nil, false
				}
			}
		}
	}
	return groups, vaggs, true
}

// concatRows flattens per-morsel row slices in morsel order.
func concatRows(parts [][]sqltypes.Row) []sqltypes.Row {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]sqltypes.Row, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// parBuildJoin builds the hash-join index over the right side in
// parallel: each morsel evaluates the build-key programs into a private
// index, and the partial tables are chained into the shared index in
// morsel order — which reproduces the serial build's first-seen dense
// bucket ids and each bucket's row order exactly.
func (x *executor) parBuildJoin(rightProgs []program, right *source) (*rowIndex, [][]sqltypes.Row, error) {
	n := len(right.rows)
	type buildPart struct {
		ix   *rowIndex
		rows [][]sqltypes.Row
	}
	bparts := make([]buildPart, morselCount(n))
	err := x.parRun(n, func(m, lo, hi int) error {
		child := x.fork()
		ix := child.newRowIndex(hi - lo)
		var bucketRows [][]sqltypes.Row
		renv := &evalEnv{frame: right.frame, x: child}
		kvals := make(sqltypes.Row, len(rightProgs))
		for _, rb := range right.rows[lo:hi] {
			renv.row = rb
			null := false
			for i, p := range rightProgs {
				v, err := p(renv)
				if err != nil {
					return err
				}
				if v.IsNull() {
					null = true
					break
				}
				kvals[i] = v
			}
			if null {
				continue // NULL keys never match
			}
			id, isNew := ix.bucket(kvals, false)
			if isNew {
				bucketRows = append(bucketRows, nil)
			}
			bucketRows[id] = append(bucketRows[id], rb)
		}
		child.chargeMorsel()
		bparts[m] = buildPart{ix: ix, rows: bucketRows}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	build := x.newRowIndex(n)
	var buildRows [][]sqltypes.Row
	for _, p := range bparts {
		for li, key := range p.ix.keys {
			gid, isNew := build.bucket(key, true)
			if isNew {
				buildRows = append(buildRows, nil)
			}
			buildRows[gid] = append(buildRows[gid], p.rows[li]...)
		}
	}
	return build, buildRows, nil
}

// parProbeJoin probes the shared build index with morsels of the left
// side; per-morsel outputs are concatenated in morsel order, so the
// join's output row order matches the serial probe. joined is the total
// matched-pair count for the engine stats; the per-row join cost was
// already charged (and slept) inside the region.
func (x *executor) parProbeJoin(hj *hashJoinProbe, vp *vplan, left *source) ([]sqltypes.Row, int64, error) {
	n := len(left.rows)
	parts := make([][]sqltypes.Row, morselCount(n))
	var joined atomic.Int64
	scan := x.takeScanCharge(left)
	err := x.parRun(n, func(m, lo, hi int) error {
		child := x.fork()
		out, j, err := hj.probeSlice(child, vp, left.rows[lo:hi])
		if err != nil {
			return err
		}
		child.work.joined += j
		if scan {
			child.work.scanned += int64(hi - lo)
		}
		child.chargeMorsel()
		joined.Add(j)
		parts[m] = out
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return concatRows(parts), joined.Load(), nil
}
