package engine

import (
	"strings"
	"testing"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
	"sqloop/internal/storage"
)

func TestEngineAccessors(t *testing.T) {
	cfg, _ := Profile("mysim")
	eng := New(cfg)
	if eng.Dialect() != sqlparser.DialectMySim {
		t.Errorf("Dialect = %v", eng.Dialect())
	}
	if eng.Backend() != storage.KindBTree {
		t.Errorf("Backend = %v", eng.Backend())
	}
	s := eng.NewSession()
	mustExec(t, s, `CREATE TABLE alpha (a BIGINT)`)
	mustExec(t, s, `CREATE TABLE beta (a BIGINT)`)
	mustExec(t, s, `INSERT INTO alpha VALUES (1), (2)`)
	names := eng.TableNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("TableNames = %v", names)
	}
	if eng.TableLen("alpha") != 2 || eng.TableLen("missing") != 0 {
		t.Errorf("TableLen alpha=%d missing=%d", eng.TableLen("alpha"), eng.TableLen("missing"))
	}
}

func TestErrorTypes(t *testing.T) {
	e1 := &ErrTableNotFound{Name: "x"}
	if !strings.Contains(e1.Error(), "x") {
		t.Error("ErrTableNotFound message")
	}
	e2 := &ErrColumnNotFound{Name: "y"}
	if !strings.Contains(e2.Error(), "y") {
		t.Error("ErrColumnNotFound message")
	}
}

func TestThreeValuedLogicTable(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE tv (a BOOLEAN, b BOOLEAN)`)
	mustExec(t, s, `INSERT INTO tv VALUES (TRUE, NULL), (FALSE, NULL), (NULL, NULL),
		(TRUE, TRUE), (TRUE, FALSE), (FALSE, FALSE)`)
	tests := []struct {
		where string
		want  int64
	}{
		// TRUE AND NULL = NULL (filtered); FALSE AND NULL = FALSE.
		{`a AND b`, 1},
		// TRUE OR NULL = TRUE.
		{`a OR b`, 3},
		{`NOT a`, 2},
		{`a AND NOT b`, 1},
		// Only (T,F) qualifies: (T,N) gives T AND NOT(N) = UNKNOWN.
		{`(a OR b) AND NOT (a AND b)`, 1},
	}
	for _, tt := range tests {
		res := mustExec(t, s, `SELECT COUNT(*) FROM tv WHERE `+tt.where)
		if got := res.Rows[0][0].Int(); got != tt.want {
			t.Errorf("WHERE %s = %d, want %d", tt.where, got, tt.want)
		}
	}
}

func TestDropVariants(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
	mustExec(t, s, `CREATE INDEX ix ON t (a)`)
	mustExec(t, s, `CREATE VIEW v AS SELECT * FROM t`)
	mustExec(t, s, `DROP INDEX ix`)
	if _, err := s.Exec(`DROP INDEX ix`); err == nil {
		t.Error("dropping a missing index must error")
	}
	mustExec(t, s, `DROP INDEX IF EXISTS ix`)
	mustExec(t, s, `DROP VIEW v`)
	if _, err := s.Exec(`DROP VIEW v`); err == nil {
		t.Error("dropping a missing view must error")
	}
	mustExec(t, s, `DROP VIEW IF EXISTS v`)
	mustExec(t, s, `DROP TABLE t`)
	mustExec(t, s, `DROP TABLE IF EXISTS t`)
	// Name collisions between tables and views.
	mustExec(t, s, `CREATE TABLE clash (a BIGINT)`)
	if _, err := s.Exec(`CREATE VIEW clash AS SELECT 1`); err == nil {
		t.Error("view over existing table name must error")
	}
	mustExec(t, s, `CREATE VIEW vclash AS SELECT 1 AS one`)
	if _, err := s.Exec(`CREATE TABLE vclash (a BIGINT)`); err == nil {
		t.Error("table over existing view name must error")
	}
}

func TestSetOpOrderingVariants(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE n (v BIGINT, s TEXT)`)
	mustExec(t, s, `INSERT INTO n VALUES (2, 'b'), (1, 'a'), (3, 'c')`)
	// Set-op ORDER BY by column name.
	res := mustExec(t, s, `SELECT v, s FROM n UNION SELECT v, s FROM n ORDER BY v DESC`)
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("order by name = %v", res.Rows)
	}
	// Out-of-range ordinal errors.
	if _, err := s.Exec(`SELECT v FROM n UNION SELECT v FROM n ORDER BY 9`); err == nil {
		t.Error("ORDER BY 9 must error")
	}
	// Unknown column errors.
	if _, err := s.Exec(`SELECT v FROM n UNION SELECT v FROM n ORDER BY nope`); err == nil {
		t.Error("ORDER BY nope must error")
	}
}

func TestIndexJoinMatchesHashJoin(t *testing.T) {
	// The same join with and without an index must agree (the index path
	// is the one SQLoop's message queries take).
	s := newTestSession(t)
	setupEdges(t, s)
	mustExec(t, s, `CREATE TABLE nodes (id BIGINT PRIMARY KEY, v DOUBLE)`)
	for i := 1; i <= 5; i++ {
		mustExec(t, s, `INSERT INTO nodes VALUES (?, ?)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewFloat(float64(i)/2))
	}
	baseline := mustExec(t, s, `
		SELECT nodes.id, SUM(e.weight) FROM nodes JOIN edges AS e ON nodes.id = e.src
		GROUP BY nodes.id ORDER BY nodes.id`)

	// Force the index path: right side has an index on the join column.
	mustExec(t, s, `CREATE INDEX esrc ON edges (src)`)
	indexed := mustExec(t, s, `
		SELECT nodes.id, SUM(e.weight) FROM nodes JOIN edges AS e ON nodes.id = e.src
		GROUP BY nodes.id ORDER BY nodes.id`)

	if len(baseline.Rows) != len(indexed.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(baseline.Rows), len(indexed.Rows))
	}
	for i := range baseline.Rows {
		for j := range baseline.Rows[i] {
			a, b := baseline.Rows[i][j], indexed.Rows[i][j]
			if c, _ := sqltypes.Compare(a, b); c != 0 {
				t.Errorf("row %d col %d: %v vs %v", i, j, a, b)
			}
		}
	}

	// LEFT JOIN via the index path pads unmatched rows.
	mustExec(t, s, `INSERT INTO nodes VALUES (99, 0.0)`)
	res := mustExec(t, s, `
		SELECT nodes.id, e.dst FROM nodes LEFT JOIN edges AS e ON nodes.id = e.src
		WHERE nodes.id = 99`)
	if len(res.Rows) != 1 || !res.Rows[0][1].IsNull() {
		t.Fatalf("left index join = %v", res.Rows)
	}

	// Index join with a residual predicate in the ON clause.
	res = mustExec(t, s, `
		SELECT COUNT(*) FROM nodes JOIN edges AS e ON nodes.id = e.src AND e.weight > 0.6`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("residual index join = %v", res.Rows[0][0])
	}
}

func TestScalarFuncErrors(t *testing.T) {
	s := newTestSession(t)
	bad := []string{
		`SELECT ABS('x')`,
		`SELECT ABS(1, 2)`,
		`SELECT LENGTH(1)`,
		`SELECT SUBSTR('a', 'b')`,
		`SELECT FLOOR('x')`,
		`SELECT PARTHASH(1, 0)`,
		`SELECT PARTHASH(1, 2, 3)`,
		`SELECT LEAST('a', 1)`,
	}
	for _, q := range bad {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", q)
		}
	}
	// NULL-propagating paths.
	good := map[string]string{
		`SELECT ABS(NULL)`:             "NULL",
		`SELECT FLOOR(NULL)`:           "NULL",
		`SELECT SQRT(4.0)`:             "2",
		`SELECT POWER(2, 10)`:          "1024",
		`SELECT ROUND(2.5)`:            "3",
		`SELECT CEIL(1.2)`:             "2",
		`SELECT FLOOR(1.8)`:            "1",
		`SELECT PARTHASH(NULL, 4)`:     "NULL",
		`SELECT UPPER(NULL)`:           "NULL",
		`SELECT TRIM(NULL)`:            "NULL",
		`SELECT REPLACE('a',NULL,'b')`: "NULL",
	}
	for q, want := range good {
		res := mustExec(t, s, q)
		if got := res.Rows[0][0].String(); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}
