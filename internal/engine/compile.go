package engine

import (
	"fmt"
	"strings"
	"sync"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
)

// This file lowers expression trees into closure chains so the per-row
// cost of the iterative hot path is a handful of direct calls instead
// of a type-switch walk over the AST. Compilation happens once per
// (expression node, frame layout) and the resulting programs are
// cached on the statement-cache entry, so the statements SQLoop
// re-executes every round never re-lower after round one.
//
// The contract is strict behavioural equivalence with evalExpr: any
// input (including zero-row inputs, bad references and runtime type
// errors) must produce the same rows and the same errors with
// compilation on or off. Two rules keep that true:
//
//   - static resolution failures (unknown/ambiguous columns) do not
//     fail compilation; the node falls back to a program that defers
//     to the interpreter, which re-raises the error per evaluation —
//     or never, if no row is ever evaluated;
//   - constant folding only replaces a subtree whose compile-time
//     evaluation succeeded. A constant subtree that errors keeps its
//     runtime program, so the error still surfaces once per
//     evaluation, not at compile time.

// program is a compiled expression: running it is equivalent to
// env.evalExpr on the source tree. Programs capture only immutable
// data (offsets, constants, child programs) and are safe for
// concurrent use by different sessions.
type program func(env *evalEnv) (sqltypes.Value, error)

// compiled pairs a program with whether its value is independent of
// row, bind args and executor state (the constant-folding property).
type compiled struct {
	run      program
	constant bool
}

// interpProg defers a node to the tree-walking interpreter. Used for
// subqueries (which need executor state) and for nodes whose static
// resolution failed, so errors keep their uncompiled timing.
func interpProg(e sqlparser.Expr) program {
	return func(env *evalEnv) (sqltypes.Value, error) { return env.evalExpr(e) }
}

// foldConst collapses a constant subtree to its value. Evaluation
// errors are deferred to run time so that inputs with zero rows behave
// exactly like the interpreter, which would never have evaluated the
// expression.
func foldConst(c compiled) compiled {
	if !c.constant {
		return c
	}
	v, err := c.run(&evalEnv{})
	if err != nil {
		return c
	}
	c.run = func(*evalEnv) (sqltypes.Value, error) { return v, nil }
	return c
}

// compileExpr lowers e against frame f. It never fails; see the file
// comment for how static errors are handled.
func compileExpr(e sqlparser.Expr, f *frame) program {
	return compileNode(e, f).run
}

func compileNode(e sqlparser.Expr, f *frame) compiled {
	switch t := e.(type) {
	case *sqlparser.Literal:
		v := t.Val
		return compiled{constant: true, run: func(*evalEnv) (sqltypes.Value, error) { return v, nil }}

	case *sqlparser.Param:
		idx := t.Index
		return compiled{run: func(env *evalEnv) (sqltypes.Value, error) {
			if env.x == nil || idx >= len(env.x.args) {
				return sqltypes.Null, fmt.Errorf("engine: missing bind parameter %d", idx+1)
			}
			return env.x.args[idx], nil
		}}

	case *sqlparser.ColumnRef:
		if f == nil {
			return compiled{run: interpProg(e)}
		}
		off, err := f.resolve(t.Table, t.Name)
		if err != nil {
			return compiled{run: interpProg(e)}
		}
		return compiled{run: func(env *evalEnv) (sqltypes.Value, error) {
			if off >= len(env.row) {
				return sqltypes.Null, nil
			}
			return env.row[off], nil
		}}

	case *sqlparser.BinaryExpr:
		l, r := compileNode(t.Left, f), compileNode(t.Right, f)
		op := t.Op
		lp, rp := l.run, r.run
		return foldConst(compiled{
			constant: l.constant && r.constant,
			run: func(env *evalEnv) (sqltypes.Value, error) {
				lv, err := lp(env)
				if err != nil {
					return sqltypes.Null, err
				}
				rv, err := rp(env)
				if err != nil {
					return sqltypes.Null, err
				}
				return sqltypes.Arith(op, lv, rv)
			},
		})

	case *sqlparser.ComparisonExpr:
		l, r := compileNode(t.Left, f), compileNode(t.Right, f)
		op := t.Op
		lp, rp := l.run, r.run
		return foldConst(compiled{
			constant: l.constant && r.constant,
			run: func(env *evalEnv) (sqltypes.Value, error) {
				lv, err := lp(env)
				if err != nil {
					return sqltypes.Null, err
				}
				rv, err := rp(env)
				if err != nil {
					return sqltypes.Null, err
				}
				return sqltypes.CompareSQL(op, lv, rv)
			},
		})

	case *sqlparser.LogicalExpr:
		return compileLogical(t, f)

	case *sqlparser.NotExpr:
		in := compileNode(t.Inner, f)
		ip := in.run
		return foldConst(compiled{
			constant: in.constant,
			run: func(env *evalEnv) (sqltypes.Value, error) {
				v, err := ip(env)
				if err != nil {
					return sqltypes.Null, err
				}
				if v.IsNull() {
					return sqltypes.Null, nil
				}
				return sqltypes.NewBool(!v.IsTrue()), nil
			},
		})

	case *sqlparser.IsNullExpr:
		in := compileNode(t.Inner, f)
		ip, not := in.run, t.Not
		return foldConst(compiled{
			constant: in.constant,
			run: func(env *evalEnv) (sqltypes.Value, error) {
				v, err := ip(env)
				if err != nil {
					return sqltypes.Null, err
				}
				return sqltypes.NewBool(v.IsNull() != not), nil
			},
		})

	case *sqlparser.InExpr:
		return compileIn(t, f)

	case *sqlparser.CaseExpr:
		return compileCase(t, f)

	case *sqlparser.FuncCall:
		return compileFunc(t, f)

	case *sqlparser.Subquery, *sqlparser.ExistsExpr:
		// Subqueries run whole select bodies through the executor; the
		// per-row win of compiling the wrapper is nil.
		return compiled{run: interpProg(e)}

	case *sqlparser.CastExpr:
		in := compileNode(t.Inner, f)
		ip, typ := in.run, t.Type
		return foldConst(compiled{
			constant: in.constant,
			run: func(env *evalEnv) (sqltypes.Value, error) {
				v, err := ip(env)
				if err != nil {
					return sqltypes.Null, err
				}
				return castValue(v, typ)
			},
		})

	case *sqlparser.LikeExpr:
		return compileLike(t, f)

	default:
		// Unknown node kinds keep the interpreter's per-evaluation
		// "unsupported expression" error.
		return compiled{run: interpProg(e)}
	}
}

// compileLogical mirrors evalLogical's three-valued short-circuit.
func compileLogical(t *sqlparser.LogicalExpr, f *frame) compiled {
	l, r := compileNode(t.Left, f), compileNode(t.Right, f)
	lp, rp := l.run, r.run
	and := t.Op == sqlparser.LogicAnd
	return foldConst(compiled{
		constant: l.constant && r.constant,
		run: func(env *evalEnv) (sqltypes.Value, error) {
			lv, err := lp(env)
			if err != nil {
				return sqltypes.Null, err
			}
			if and && !lv.IsNull() && !lv.IsTrue() {
				return sqltypes.NewBool(false), nil
			}
			if !and && lv.IsTrue() {
				return sqltypes.NewBool(true), nil
			}
			rv, err := rp(env)
			if err != nil {
				return sqltypes.Null, err
			}
			if and {
				switch {
				case !rv.IsNull() && !rv.IsTrue():
					return sqltypes.NewBool(false), nil
				case lv.IsNull() || rv.IsNull():
					return sqltypes.Null, nil
				default:
					return sqltypes.NewBool(true), nil
				}
			}
			switch {
			case rv.IsTrue():
				return sqltypes.NewBool(true), nil
			case lv.IsNull() || rv.IsNull():
				return sqltypes.Null, nil
			default:
				return sqltypes.NewBool(false), nil
			}
		},
	})
}

// compileIn compiles the list form of IN; the subquery form keeps the
// interpreter (it memoizes through executor state).
func compileIn(t *sqlparser.InExpr, f *frame) compiled {
	if t.Sub != nil {
		return compiled{run: interpProg(t)}
	}
	left := compileNode(t.Left, f)
	items := make([]program, len(t.List))
	constant := left.constant
	for i, it := range t.List {
		c := compileNode(it, f)
		items[i] = c.run
		constant = constant && c.constant
	}
	lp, not := left.run, t.Not
	return foldConst(compiled{
		constant: constant,
		run: func(env *evalEnv) (sqltypes.Value, error) {
			l, err := lp(env)
			if err != nil {
				return sqltypes.Null, err
			}
			if l.IsNull() {
				return sqltypes.Null, nil
			}
			sawNull := false
			for _, ip := range items {
				v, err := ip(env)
				if err != nil {
					return sqltypes.Null, err
				}
				if v.IsNull() {
					sawNull = true
					continue
				}
				eq, err := sqltypes.CompareSQL(sqltypes.CmpEQ, l, v)
				if err != nil {
					// Incomparable kinds never match.
					continue
				}
				if eq.IsTrue() {
					return sqltypes.NewBool(!not), nil
				}
			}
			if sawNull {
				return sqltypes.Null, nil
			}
			return sqltypes.NewBool(not), nil
		},
	})
}

func compileCase(t *sqlparser.CaseExpr, f *frame) compiled {
	conds := make([]program, len(t.Whens))
	results := make([]program, len(t.Whens))
	constant := true
	for i, w := range t.Whens {
		c, r := compileNode(w.Cond, f), compileNode(w.Result, f)
		conds[i], results[i] = c.run, r.run
		constant = constant && c.constant && r.constant
	}
	var elseP program
	if t.Else != nil {
		c := compileNode(t.Else, f)
		elseP = c.run
		constant = constant && c.constant
	}
	return foldConst(compiled{
		constant: constant,
		run: func(env *evalEnv) (sqltypes.Value, error) {
			for i, cp := range conds {
				c, err := cp(env)
				if err != nil {
					return sqltypes.Null, err
				}
				if c.IsTrue() {
					return results[i](env)
				}
			}
			if elseP != nil {
				return elseP(env)
			}
			return sqltypes.Null, nil
		},
	})
}

func compileFunc(t *sqlparser.FuncCall, f *frame) compiled {
	if isAggregate(t.Name) {
		fc := t
		return compiled{run: func(env *evalEnv) (sqltypes.Value, error) {
			if env.aggs != nil {
				if v, ok := env.aggs[fc]; ok {
					return v, nil
				}
			}
			return sqltypes.Null, fmt.Errorf("engine: aggregate %s used outside grouped query", fc.Name)
		}}
	}
	cargs := make([]compiled, len(t.Args))
	constant := true
	for i, a := range t.Args {
		cargs[i] = compileNode(a, f)
		constant = constant && cargs[i].constant
	}
	name := t.Name
	var run program
	// Fixed-arity fast paths keep the argument vector on the stack
	// (callScalarFunc does not retain it), removing the interpreter's
	// per-call slice allocation.
	switch len(cargs) {
	case 1:
		a0 := cargs[0].run
		run = func(env *evalEnv) (sqltypes.Value, error) {
			v, err := a0(env)
			if err != nil {
				return sqltypes.Null, err
			}
			buf := [1]sqltypes.Value{v}
			return callScalarFunc(name, buf[:])
		}
	case 2:
		a0, a1 := cargs[0].run, cargs[1].run
		run = func(env *evalEnv) (sqltypes.Value, error) {
			v0, err := a0(env)
			if err != nil {
				return sqltypes.Null, err
			}
			v1, err := a1(env)
			if err != nil {
				return sqltypes.Null, err
			}
			buf := [2]sqltypes.Value{v0, v1}
			return callScalarFunc(name, buf[:])
		}
	default:
		runs := make([]program, len(cargs))
		for i, c := range cargs {
			runs[i] = c.run
		}
		run = func(env *evalEnv) (sqltypes.Value, error) {
			args := make([]sqltypes.Value, len(runs))
			for i, p := range runs {
				v, err := p(env)
				if err != nil {
					return sqltypes.Null, err
				}
				args[i] = v
			}
			return callScalarFunc(name, args)
		}
	}
	return foldConst(compiled{run: run, constant: constant && knownScalarFunc(name)})
}

// compileLike precompiles constant LIKE patterns into a segment
// matcher; variable patterns keep per-row likeMatch over compiled
// children.
func compileLike(t *sqlparser.LikeExpr, f *frame) compiled {
	left := compileNode(t.Left, f)
	pat := compileNode(t.Pattern, f)
	lp, pp, not := left.run, pat.run, t.Not

	if pat.constant {
		pv, err := pat.run(&evalEnv{})
		switch {
		case err == nil && pv.IsNull():
			// NULL pattern: the result is NULL whenever the left side
			// evaluates (the interpreter checks nullness before kinds).
			return foldConst(compiled{
				constant: left.constant,
				run: func(env *evalEnv) (sqltypes.Value, error) {
					if _, err := lp(env); err != nil {
						return sqltypes.Null, err
					}
					return sqltypes.Null, nil
				},
			})
		case err == nil && pv.Kind() == sqltypes.KindString:
			m := compileLikePattern(pv.Str())
			return foldConst(compiled{
				constant: left.constant,
				run: func(env *evalEnv) (sqltypes.Value, error) {
					l, err := lp(env)
					if err != nil {
						return sqltypes.Null, err
					}
					if l.IsNull() {
						return sqltypes.Null, nil
					}
					if l.Kind() != sqltypes.KindString {
						return sqltypes.Null, fmt.Errorf("engine: LIKE requires strings")
					}
					return sqltypes.NewBool(m.match(l.Str()) != not), nil
				},
			})
		}
		// Constant evaluation failed or yielded a non-string: fall
		// through to the generic path, which reproduces the
		// interpreter's error timing exactly.
	}
	return foldConst(compiled{
		constant: left.constant && pat.constant,
		run: func(env *evalEnv) (sqltypes.Value, error) {
			l, err := lp(env)
			if err != nil {
				return sqltypes.Null, err
			}
			p, err := pp(env)
			if err != nil {
				return sqltypes.Null, err
			}
			if l.IsNull() || p.IsNull() {
				return sqltypes.Null, nil
			}
			if l.Kind() != sqltypes.KindString || p.Kind() != sqltypes.KindString {
				return sqltypes.Null, fmt.Errorf("engine: LIKE requires strings")
			}
			return sqltypes.NewBool(likeMatch(l.Str(), p.Str()) != not), nil
		},
	})
}

// likeMatcher is a LIKE pattern split on '%' into byte chunks ('_'
// wildcards stay inside chunks): the head chunk is anchored at the
// start, the tail chunk at the end, and interior chunks are matched
// greedily left to right — linear in the input instead of the
// interpreter's backtracking walk over the raw pattern.
type likeMatcher struct {
	exact bool // pattern has no '%': head is the whole pattern
	head  string
	mids  []string
	tail  string
}

// compileLikePattern builds the matcher. Matching is byte-level, like
// likeMatch, so behaviour on non-UTF-8 input is identical.
func compileLikePattern(p string) *likeMatcher {
	if !strings.Contains(p, "%") {
		return &likeMatcher{exact: true, head: p}
	}
	segs := strings.Split(p, "%")
	m := &likeMatcher{head: segs[0], tail: segs[len(segs)-1]}
	for _, s := range segs[1 : len(segs)-1] {
		if s != "" {
			m.mids = append(m.mids, s)
		}
	}
	return m
}

func (m *likeMatcher) match(s string) bool {
	if m.exact {
		return len(s) == len(m.head) && likeChunkEq(s, m.head)
	}
	if len(s) < len(m.head)+len(m.tail) {
		return false
	}
	if !likeChunkEq(s[:len(m.head)], m.head) {
		return false
	}
	if !likeChunkEq(s[len(s)-len(m.tail):], m.tail) {
		return false
	}
	i := len(m.head)
	limit := len(s) - len(m.tail)
	for _, c := range m.mids {
		j := likeChunkIndex(s[i:limit], c)
		if j < 0 {
			return false
		}
		i += j + len(c)
	}
	return true
}

// likeChunkEq matches a '%'-free pattern chunk against a string slice
// of equal length ('_' matches any byte).
func likeChunkEq(s, c string) bool {
	for k := 0; k < len(c); k++ {
		if c[k] != '_' && c[k] != s[k] {
			return false
		}
	}
	return true
}

// likeChunkIndex finds the leftmost match of chunk c inside s, -1 when
// absent. Leftmost placement of interior chunks is optimal for
// '%'-separated patterns.
func likeChunkIndex(s, c string) int {
	for i := 0; i+len(c) <= len(s); i++ {
		if likeChunkEq(s[i:i+len(c)], c) {
			return i
		}
	}
	return -1
}

// andProg chains two programs with three-valued AND, matching the
// interpreter's evaluation of the equivalent LogicalExpr node.
func andProg(lp, rp program) program {
	return func(env *evalEnv) (sqltypes.Value, error) {
		lv, err := lp(env)
		if err != nil {
			return sqltypes.Null, err
		}
		if !lv.IsNull() && !lv.IsTrue() {
			return sqltypes.NewBool(false), nil
		}
		rv, err := rp(env)
		if err != nil {
			return sqltypes.Null, err
		}
		switch {
		case !rv.IsNull() && !rv.IsTrue():
			return sqltypes.NewBool(false), nil
		case lv.IsNull() || rv.IsNull():
			return sqltypes.Null, nil
		default:
			return sqltypes.NewBool(true), nil
		}
	}
}

// residualProg compiles a residual conjunct list into one program,
// evaluating exactly like the left-associative AND chain the join
// used to synthesize. The conjuncts are original AST nodes, so their
// programs cache normally; only the cheap per-statement AND wrappers
// are rebuilt. Returns nil for an empty list.
func (x *executor) residualProg(conjuncts []sqlparser.Expr, f *frame) program {
	var p program
	for _, c := range conjuncts {
		q := x.prog(c, f)
		if p == nil {
			p = q
		} else {
			p = andProg(p, q)
		}
	}
	return p
}

// selPlan is the compiled form of one SELECT core under one input
// frame: star-expanded items, output names, and the programs for every
// per-row expression. Cached on the statement's progCache keyed by the
// Select node, so star expansion and lowering happen once per cached
// statement instead of once per execution (star expansion synthesizes
// fresh ColumnRef nodes, which must not leak into the per-node program
// cache). All fields are immutable after construction.
type selPlan struct {
	items     []sqlparser.SelectItem
	cols      []string
	itemProgs []program
	having    program
	groupBy   []program
	aggs      []*sqlparser.FuncCall
	// aggArgs holds the compiled argument of each well-formed non-star
	// aggregate; malformed calls are absent and fail in computeAggregate.
	aggArgs  map[*sqlparser.FuncCall]program
	orderFns []orderKeyFn
	desc     []bool

	// Batch-execution lowerings (nil / empty when vectorization is off).
	// vecItems holds one batch node per select item for the non-grouped
	// projection. vecGB holds the GROUP BY key nodes followed by the
	// argument nodes of the vectorizable aggregates listed in vecAggs.
	// vecAggsAll reports that every aggregate of the plan is in vecAggs,
	// so batch grouping need not materialize per-group row lists.
	// orderRowOnly reports that every ORDER BY key reads only the
	// projected output row (ordinals and output aliases), so batch
	// projection may drop the per-row environments.
	vecItems     *vplan
	vecGB        *vplan
	vecAggs      []vecAggSpec
	vecAggsAll   bool
	orderRowOnly bool
}

// vecAggSpec is one vectorizable aggregate: the call and the index of
// its argument node in vecGB.nodes (-1 for COUNT(*), which has none).
type vecAggSpec struct {
	fc   *sqlparser.FuncCall
	node int
}

// orderKeyFn produces one ORDER BY key for an output row: ordinals and
// output aliases read the projected row, anything else evaluates in the
// row's originating environment.
type orderKeyFn func(out sqltypes.Row, env *evalEnv) (sqltypes.Value, error)

// selKey identifies a cached select plan.
type selKey struct {
	sel *sqlparser.Select
	sig string
}

// compileHere lowers e without consulting the per-node program cache;
// the caller is responsible for retaining the result (select plans
// cache whole compiled item lists, including synthesized star nodes).
func (x *executor) compileHere(e sqlparser.Expr, f *frame) program {
	if x.eng.cfg.DisableExprCompile {
		return interpProg(e)
	}
	x.eng.exprCompiles.Add(1)
	return compileExpr(e, f)
}

// selectPlan returns the (possibly cached) compiled plan for s under f.
func (x *executor) selectPlan(s *sqlparser.Select, f *frame) (*selPlan, error) {
	cacheable := x.progs != nil && !x.eng.cfg.DisableExprCompile
	var key selKey
	if cacheable {
		key = selKey{sel: s, sig: f.sig()}
		if p := x.progs.getSel(key); p != nil {
			x.eng.exprCacheHits.Add(1)
			return p, nil
		}
	}
	p, err := x.buildSelectPlan(s, f)
	if err != nil {
		return nil, err
	}
	if cacheable {
		x.progs.putSel(key, p)
	}
	return p, nil
}

func (x *executor) buildSelectPlan(s *sqlparser.Select, f *frame) (*selPlan, error) {
	items, err := expandStars(s.Items, f)
	if err != nil {
		return nil, err
	}
	p := &selPlan{items: items, cols: outputColumns(items)}
	p.itemProgs = make([]program, len(items))
	for i, it := range items {
		p.itemProgs[i] = x.compileHere(it.Expr, f)
	}
	if s.Having != nil {
		p.having = x.compileHere(s.Having, f)
	}
	for _, g := range s.GroupBy {
		p.groupBy = append(p.groupBy, x.compileHere(g, f))
	}
	for _, it := range items {
		collectAggregates(it.Expr, &p.aggs)
	}
	collectAggregates(s.Having, &p.aggs)
	for _, o := range s.OrderBy {
		collectAggregates(o.Expr, &p.aggs)
	}
	p.aggArgs = make(map[*sqlparser.FuncCall]program, len(p.aggs))
	for _, fc := range p.aggs {
		if !fc.Star && len(fc.Args) == 1 {
			p.aggArgs[fc] = x.compileHere(fc.Args[0], f)
		}
	}
	p.orderRowOnly = true
	for _, o := range s.OrderBy {
		fn, rowOnly := x.orderKeyFn(o.Expr, p.cols, f)
		p.orderFns = append(p.orderFns, fn)
		p.desc = append(p.desc, o.Desc)
		if !rowOnly {
			p.orderRowOnly = false
		}
	}
	if x.vecOK() {
		itemExprs := make([]sqlparser.Expr, len(items))
		for i, it := range items {
			itemExprs[i] = it.Expr
		}
		p.vecItems = compileVecPlan(itemExprs, f)
		if len(s.GroupBy) > 0 || len(p.aggs) > 0 {
			gbExprs := append([]sqlparser.Expr(nil), s.GroupBy...)
			p.vecAggsAll = true
			for _, fc := range p.aggs {
				switch {
				case fc.Star && fc.Name == "COUNT":
					p.vecAggs = append(p.vecAggs, vecAggSpec{fc: fc, node: -1})
				case !fc.Star && !fc.Distinct && len(fc.Args) == 1 && isVecAggName(fc.Name):
					p.vecAggs = append(p.vecAggs, vecAggSpec{fc: fc, node: len(gbExprs)})
					gbExprs = append(gbExprs, fc.Args[0])
				default:
					p.vecAggsAll = false
				}
			}
			p.vecGB = compileVecPlan(gbExprs, f)
		}
	}
	return p, nil
}

// isVecAggName reports whether the aggregate has a streaming batch
// accumulator (vecAgg); others run through computeAggregate per group.
func isVecAggName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// orderKeyFn resolves one ORDER BY expression once, mirroring the
// per-row resolution the interpreter used to do inside the sort.
// rowOnly reports that the key reads only the projected output row, not
// the row's originating environment.
func (x *executor) orderKeyFn(e sqlparser.Expr, cols []string, f *frame) (orderKeyFn, bool) {
	switch t := e.(type) {
	case *sqlparser.Literal:
		if t.Val.Kind() == sqltypes.KindInt {
			n := int(t.Val.Int())
			return func(out sqltypes.Row, env *evalEnv) (sqltypes.Value, error) {
				if n >= 1 && n <= len(out) {
					return out[n-1], nil
				}
				return sqltypes.Null, fmt.Errorf("engine: ORDER BY position %d out of range", n)
			}, true
		}
	case *sqlparser.ColumnRef:
		if t.Table == "" {
			for j, c := range cols {
				if strings.EqualFold(c, t.Name) {
					j := j
					return func(out sqltypes.Row, env *evalEnv) (sqltypes.Value, error) {
						return out[j], nil
					}, true
				}
			}
		}
	}
	p := x.compileHere(e, f)
	return func(out sqltypes.Row, env *evalEnv) (sqltypes.Value, error) {
		return p(env)
	}, false
}

// progKey identifies a cached program: the expression node (by
// identity — cached statements share immutable ASTs) plus the frame
// layout it was resolved against. The same node can legitimately
// compile under several layouts (a view body referenced from different
// outer queries), so the signature is part of the key, not just a
// validity check.
type progKey struct {
	expr sqlparser.Expr
	sig  string
}

// progCache holds the compiled programs of one cached statement. It is
// shared by every session executing that statement, hence the lock.
type progCache struct {
	mu   sync.RWMutex
	m    map[progKey]program
	sels map[selKey]*selPlan
	// vecs caches single-expression batch plans (WHERE, join keys). A
	// nil value is cached too: it records that the plan had nothing to
	// vectorize, so the row path is taken without recompiling.
	vecs map[progKey]*vplan
}

func newProgCache() *progCache {
	return &progCache{
		m:    make(map[progKey]program),
		sels: make(map[selKey]*selPlan),
		vecs: make(map[progKey]*vplan),
	}
}

func (pc *progCache) getVec(k progKey) (*vplan, bool) {
	pc.mu.RLock()
	p, ok := pc.vecs[k]
	pc.mu.RUnlock()
	return p, ok
}

func (pc *progCache) putVec(k progKey, p *vplan) {
	pc.mu.Lock()
	pc.vecs[k] = p
	pc.mu.Unlock()
}

func (pc *progCache) getSel(k selKey) *selPlan {
	pc.mu.RLock()
	p := pc.sels[k]
	pc.mu.RUnlock()
	return p
}

func (pc *progCache) putSel(k selKey, p *selPlan) {
	pc.mu.Lock()
	pc.sels[k] = p
	pc.mu.Unlock()
}

func (pc *progCache) get(k progKey) program {
	pc.mu.RLock()
	p := pc.m[k]
	pc.mu.RUnlock()
	return p
}

func (pc *progCache) put(k progKey, p program) {
	pc.mu.Lock()
	pc.m[k] = p
	pc.mu.Unlock()
}

// size reports the number of cached programs (tests).
func (pc *progCache) size() int {
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	return len(pc.m)
}

// ExprCompileStats reports how many expression lowerings the engine has
// performed and how many were avoided by the program cache (tests and
// diagnostics): in steady-state iterative rounds only hits should grow.
func (e *Engine) ExprCompileStats() (compiles, cacheHits int64) {
	return e.exprCompiles.Load(), e.exprCacheHits.Load()
}

// prog returns the program for e against f, consulting the statement's
// shared program cache when one is attached. With DisableExprCompile
// set the returned program defers to the tree-walking interpreter —
// the A/B baseline the compile on/off matrix exercises.
func (x *executor) prog(e sqlparser.Expr, f *frame) program {
	if x.eng.cfg.DisableExprCompile {
		return interpProg(e)
	}
	if x.progs == nil {
		x.eng.exprCompiles.Add(1)
		return compileExpr(e, f)
	}
	k := progKey{expr: e, sig: f.sig()}
	if p := x.progs.get(k); p != nil {
		x.eng.exprCacheHits.Add(1)
		return p
	}
	p := compileExpr(e, f)
	x.progs.put(k, p)
	x.eng.exprCompiles.Add(1)
	if r := x.eng.metrics.Load(); r != nil {
		r.Counter("sqloop_expr_programs_compiled").Inc()
	}
	return p
}
