package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"sqloop/internal/sqltypes"
	"sqloop/internal/storage"
)

// The pager's table files carry rows but no schemas: the engine's
// catalog is an in-memory map, so without a manifest a restart would
// come back with durable data it cannot name (and a re-issued CREATE
// TABLE would wipe it). On the disk backend every table DDL rewrites
// catalog.json in the data directory — temp-file + fsync + atomic
// rename, same discipline as internal/ckpt — and engine.New recovers
// the catalog from it before accepting statements. Views and hash
// indexes are session-rebuildable derived state and are deliberately
// not persisted.

const diskCatalogFile = "catalog.json"

type diskCatalogColumn struct {
	Name string `json:"name"`
	Type string `json:"type"` // sqltypes.ColumnType.String() spelling
}

type diskCatalogTable struct {
	Name    string              `json:"name"`
	Columns []diskCatalogColumn `json:"columns"`
	PK      int                 `json:"pk"` // -1: synthetic rowid keys
}

type diskCatalog struct {
	Version int                `json:"version"`
	Tables  []diskCatalogTable `json:"tables"`
}

// saveDiskCatalog rewrites the manifest from the current catalog map.
// Caller holds e.mu. A no-op for the in-memory backends.
func (e *Engine) saveDiskCatalog() error {
	if e.cfg.Backend != storage.KindDisk {
		return nil
	}
	e.pagerMu.Lock()
	dir := e.pagerDir
	e.pagerMu.Unlock()
	if dir == "" {
		// No store has been created yet (the catalog can only be empty);
		// the manifest is written with the first table.
		return nil
	}
	cat := diskCatalog{Version: 1}
	for _, t := range e.tables {
		ct := diskCatalogTable{Name: t.name, PK: t.pkCol}
		for _, c := range t.schema.Columns {
			ct.Columns = append(ct.Columns, diskCatalogColumn{Name: c.Name, Type: c.Type.String()})
		}
		cat.Tables = append(cat.Tables, ct)
	}
	sort.Slice(cat.Tables, func(i, j int) bool { return cat.Tables[i].Name < cat.Tables[j].Name })
	b, err := json.MarshalIndent(&cat, "", "  ")
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".catalog-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(append(b, '\n')); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, diskCatalogFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// recoverDiskCatalog reopens every table named in the manifest, called
// once from New before the engine accepts statements. Missing manifest
// means a fresh data directory. On any failure the engine refuses all
// statements (see cachedParse) rather than starting empty over live
// table files.
func (e *Engine) recoverDiskCatalog() error {
	b, err := os.ReadFile(filepath.Join(e.cfg.DataDir, diskCatalogFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var cat diskCatalog
	if err := json.Unmarshal(b, &cat); err != nil {
		return fmt.Errorf("parsing %s: %w", diskCatalogFile, err)
	}
	if cat.Version != 1 {
		return fmt.Errorf("%s: unsupported version %d", diskCatalogFile, cat.Version)
	}
	db, err := e.pagerDB()
	if err != nil {
		return err
	}
	// Recovered synthetic-key tables keep their old rowids; the global
	// allocator must resume past every one of them or fresh inserts
	// would silently collide with recovered rows.
	var maxRowid int64
	for _, ct := range cat.Tables {
		cols := make([]sqltypes.Column, len(ct.Columns))
		for i, c := range ct.Columns {
			typ, err := sqltypes.ParseColumnType(c.Type)
			if err != nil {
				return fmt.Errorf("table %q: %w", ct.Name, err)
			}
			cols[i] = sqltypes.Column{Name: c.Name, Type: typ}
		}
		schema, err := sqltypes.NewSchema(cols...)
		if err != nil {
			return fmt.Errorf("table %q: %w", ct.Name, err)
		}
		store, err := db.OpenStore(ct.Name)
		if err != nil {
			return fmt.Errorf("table %q: %w", ct.Name, err)
		}
		if ct.PK < 0 {
			store.Scan(func(k sqltypes.Key, _ sqltypes.Row) bool {
				if v := k.Value(); v.Kind() == sqltypes.KindInt && v.Int() > maxRowid {
					maxRowid = v.Int()
				}
				return true
			})
		}
		e.tables[ct.Name] = &Table{
			name:    ct.Name,
			schema:  schema,
			pkCol:   ct.PK,
			store:   store,
			indexes: make(map[string]*hashIndex),
		}
	}
	if maxRowid > e.rowid.Load() {
		e.rowid.Store(maxRowid)
	}
	return nil
}
