package engine

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
)

// frame describes the shape of the row tuples flowing through a query:
// an ordered set of relations, each occupying a contiguous slice of the
// concatenated row.
type frame struct {
	rels  []relMeta
	width int
	sigv  string // memoized layout signature (see sig)
}

// relMeta is one relation inside a frame.
type relMeta struct {
	name string // alias (or table name); may be empty for derived rows
	cols []string
	off  int
}

// addRel appends a relation to the frame and returns its metadata.
func (f *frame) addRel(name string, cols []string) relMeta {
	rm := relMeta{name: name, cols: cols, off: f.width}
	f.rels = append(f.rels, rm)
	f.width += len(cols)
	f.sigv = ""
	return rm
}

// sig returns a canonical layout signature for the frame: two frames
// with equal signatures resolve every column reference to the same
// offset (resolve is case-insensitive, so names are lowercased). It
// keys compiled-program cache entries across executions.
func (f *frame) sig() string {
	if f.sigv == "" {
		var sb strings.Builder
		sb.WriteByte('#')
		for _, r := range f.rels {
			sb.WriteString(strings.ToLower(r.name))
			sb.WriteByte('[')
			for i, c := range r.cols {
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(strings.ToLower(c))
			}
			sb.WriteByte(']')
		}
		f.sigv = sb.String()
	}
	return f.sigv
}

// concat combines two frames (as a join does), left columns first.
func concatFrames(a, b *frame) *frame {
	out := &frame{}
	for _, r := range a.rels {
		out.addRel(r.name, r.cols)
	}
	for _, r := range b.rels {
		out.addRel(r.name, r.cols)
	}
	return out
}

// resolve locates a column reference within the frame, returning its
// absolute offset.
func (f *frame) resolve(table, col string) (int, error) {
	if table != "" {
		for _, r := range f.rels {
			if !strings.EqualFold(r.name, table) {
				continue
			}
			for i, c := range r.cols {
				if strings.EqualFold(c, col) {
					return r.off + i, nil
				}
			}
			return -1, &ErrColumnNotFound{Name: table + "." + col}
		}
		return -1, &ErrColumnNotFound{Name: table + "." + col}
	}
	found := -1
	for _, r := range f.rels {
		for i, c := range r.cols {
			if strings.EqualFold(c, col) {
				if found >= 0 {
					return -1, fmt.Errorf("engine: column reference %q is ambiguous", col)
				}
				found = r.off + i
			}
		}
	}
	if found < 0 {
		return -1, &ErrColumnNotFound{Name: col}
	}
	return found, nil
}

// hasColumn reports whether the frame can resolve the reference.
func (f *frame) hasColumn(table, col string) bool {
	_, err := f.resolve(table, col)
	return err == nil
}

// evalEnv is the evaluation context for one row.
type evalEnv struct {
	frame *frame
	row   sqltypes.Row
	// aggs maps aggregate call nodes (by identity) to their computed
	// value for the current group.
	aggs map[*sqlparser.FuncCall]sqltypes.Value
	// x gives access to bind args, CTE scope and scalar subquery
	// execution.
	x *executor
}

// evalExpr evaluates e in env with SQL NULL semantics.
func (env *evalEnv) evalExpr(e sqlparser.Expr) (sqltypes.Value, error) {
	switch t := e.(type) {
	case *sqlparser.Literal:
		return t.Val, nil
	case *sqlparser.Param:
		if env.x == nil || t.Index >= len(env.x.args) {
			return sqltypes.Null, fmt.Errorf("engine: missing bind parameter %d", t.Index+1)
		}
		return env.x.args[t.Index], nil
	case *sqlparser.ColumnRef:
		if env.frame == nil {
			return sqltypes.Null, &ErrColumnNotFound{Name: t.Name}
		}
		off, err := env.frame.resolve(t.Table, t.Name)
		if err != nil {
			return sqltypes.Null, err
		}
		if off >= len(env.row) {
			return sqltypes.Null, nil
		}
		return env.row[off], nil
	case *sqlparser.BinaryExpr:
		l, err := env.evalExpr(t.Left)
		if err != nil {
			return sqltypes.Null, err
		}
		r, err := env.evalExpr(t.Right)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.Arith(t.Op, l, r)
	case *sqlparser.ComparisonExpr:
		l, err := env.evalExpr(t.Left)
		if err != nil {
			return sqltypes.Null, err
		}
		r, err := env.evalExpr(t.Right)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.CompareSQL(t.Op, l, r)
	case *sqlparser.LogicalExpr:
		return env.evalLogical(t)
	case *sqlparser.NotExpr:
		v, err := env.evalExpr(t.Inner)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(!v.IsTrue()), nil
	case *sqlparser.IsNullExpr:
		v, err := env.evalExpr(t.Inner)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool(v.IsNull() != t.Not), nil
	case *sqlparser.InExpr:
		return env.evalIn(t)
	case *sqlparser.CaseExpr:
		for _, w := range t.Whens {
			c, err := env.evalExpr(w.Cond)
			if err != nil {
				return sqltypes.Null, err
			}
			if c.IsTrue() {
				return env.evalExpr(w.Result)
			}
		}
		if t.Else != nil {
			return env.evalExpr(t.Else)
		}
		return sqltypes.Null, nil
	case *sqlparser.FuncCall:
		return env.evalFunc(t)
	case *sqlparser.Subquery:
		return env.evalScalarSubquery(t)
	case *sqlparser.ExistsExpr:
		rel, err := env.evalBodyInScope(t.Body)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool(len(rel.rows) > 0), nil
	case *sqlparser.CastExpr:
		v, err := env.evalExpr(t.Inner)
		if err != nil {
			return sqltypes.Null, err
		}
		return castValue(v, t.Type)
	case *sqlparser.LikeExpr:
		l, err := env.evalExpr(t.Left)
		if err != nil {
			return sqltypes.Null, err
		}
		pat, err := env.evalExpr(t.Pattern)
		if err != nil {
			return sqltypes.Null, err
		}
		if l.IsNull() || pat.IsNull() {
			return sqltypes.Null, nil
		}
		if l.Kind() != sqltypes.KindString || pat.Kind() != sqltypes.KindString {
			return sqltypes.Null, fmt.Errorf("engine: LIKE requires strings")
		}
		return sqltypes.NewBool(likeMatch(l.Str(), pat.Str()) != t.Not), nil
	default:
		return sqltypes.Null, fmt.Errorf("engine: unsupported expression %T", e)
	}
}

// evalLogical implements three-valued AND/OR.
func (env *evalEnv) evalLogical(t *sqlparser.LogicalExpr) (sqltypes.Value, error) {
	l, err := env.evalExpr(t.Left)
	if err != nil {
		return sqltypes.Null, err
	}
	// Short circuit where three-valued logic allows.
	if t.Op == sqlparser.LogicAnd && !l.IsNull() && !l.IsTrue() {
		return sqltypes.NewBool(false), nil
	}
	if t.Op == sqlparser.LogicOr && l.IsTrue() {
		return sqltypes.NewBool(true), nil
	}
	r, err := env.evalExpr(t.Right)
	if err != nil {
		return sqltypes.Null, err
	}
	if t.Op == sqlparser.LogicAnd {
		switch {
		case !r.IsNull() && !r.IsTrue():
			return sqltypes.NewBool(false), nil
		case l.IsNull() || r.IsNull():
			return sqltypes.Null, nil
		default:
			return sqltypes.NewBool(true), nil
		}
	}
	switch {
	case r.IsTrue():
		return sqltypes.NewBool(true), nil
	case l.IsNull() || r.IsNull():
		return sqltypes.Null, nil
	default:
		return sqltypes.NewBool(false), nil
	}
}

func (env *evalEnv) evalIn(t *sqlparser.InExpr) (sqltypes.Value, error) {
	l, err := env.evalExpr(t.Left)
	if err != nil {
		return sqltypes.Null, err
	}
	if l.IsNull() {
		return sqltypes.Null, nil
	}
	// Subquery form: evaluate the (uncorrelated) body once per statement
	// and compare against its single column.
	if t.Sub != nil {
		vals, err := env.inSubqueryValues(t)
		if err != nil {
			return sqltypes.Null, err
		}
		sawNull := false
		for _, v := range vals {
			if v.IsNull() {
				sawNull = true
				continue
			}
			eq, err := sqltypes.CompareSQL(sqltypes.CmpEQ, l, v)
			if err != nil {
				continue
			}
			if eq.IsTrue() {
				return sqltypes.NewBool(!t.Not), nil
			}
		}
		if sawNull {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(t.Not), nil
	}
	sawNull := false
	for _, item := range t.List {
		v, err := env.evalExpr(item)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		eq, err := sqltypes.CompareSQL(sqltypes.CmpEQ, l, v)
		if err != nil {
			// Incomparable kinds never match.
			continue
		}
		if eq.IsTrue() {
			return sqltypes.NewBool(!t.Not), nil
		}
	}
	if sawNull {
		return sqltypes.Null, nil
	}
	return sqltypes.NewBool(t.Not), nil
}

// aggregateFuncs are the five functions SQLoop parallelizes (§V-A).
func isAggregate(name string) bool {
	switch name {
	case "SUM", "MIN", "MAX", "COUNT", "AVG":
		return true
	default:
		return false
	}
}

func (env *evalEnv) evalFunc(t *sqlparser.FuncCall) (sqltypes.Value, error) {
	if isAggregate(t.Name) {
		if env.aggs != nil {
			if v, ok := env.aggs[t]; ok {
				return v, nil
			}
		}
		return sqltypes.Null, fmt.Errorf("engine: aggregate %s used outside grouped query", t.Name)
	}
	args := make([]sqltypes.Value, len(t.Args))
	for i, a := range t.Args {
		v, err := env.evalExpr(a)
		if err != nil {
			return sqltypes.Null, err
		}
		args[i] = v
	}
	return callScalarFunc(t.Name, args)
}

// callScalarFunc dispatches the built-in scalar functions.
func callScalarFunc(name string, args []sqltypes.Value) (sqltypes.Value, error) {
	switch name {
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return sqltypes.Null, nil
	case "LEAST", "GREATEST":
		// NULLs are ignored (PostgreSQL semantics).
		best := sqltypes.Null
		for _, a := range args {
			if a.IsNull() {
				continue
			}
			if best.IsNull() {
				best = a
				continue
			}
			c, err := sqltypes.Compare(a, best)
			if err != nil {
				return sqltypes.Null, err
			}
			if (name == "LEAST" && c < 0) || (name == "GREATEST" && c > 0) {
				best = a
			}
		}
		return best, nil
	case "ABS":
		if err := wantArgs(name, args, 1); err != nil {
			return sqltypes.Null, err
		}
		a := args[0]
		switch {
		case a.IsNull():
			return sqltypes.Null, nil
		case a.Kind() == sqltypes.KindInt:
			if a.Int() < 0 {
				return sqltypes.NewInt(-a.Int()), nil
			}
			return a, nil
		case a.Kind() == sqltypes.KindFloat:
			return sqltypes.NewFloat(math.Abs(a.Float())), nil
		default:
			return sqltypes.Null, fmt.Errorf("engine: ABS of %s", a.Kind())
		}
	case "MOD":
		if err := wantArgs(name, args, 2); err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.Arith(sqltypes.OpMod, args[0], args[1])
	case "FLOOR", "CEIL", "CEILING", "ROUND":
		if err := wantArgs(name, args, 1); err != nil {
			return sqltypes.Null, err
		}
		a := args[0]
		if a.IsNull() {
			return sqltypes.Null, nil
		}
		if !a.IsNumeric() {
			return sqltypes.Null, fmt.Errorf("engine: %s of %s", name, a.Kind())
		}
		f := a.Float()
		switch name {
		case "FLOOR":
			return sqltypes.NewFloat(math.Floor(f)), nil
		case "ROUND":
			return sqltypes.NewFloat(math.Round(f)), nil
		default:
			return sqltypes.NewFloat(math.Ceil(f)), nil
		}
	case "SQRT":
		if err := wantArgs(name, args, 1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewFloat(math.Sqrt(args[0].Float())), nil
	case "POWER", "POW":
		if err := wantArgs(name, args, 2); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewFloat(math.Pow(args[0].Float(), args[1].Float())), nil
	case "UPPER", "LOWER":
		if err := wantArgs(name, args, 1); err != nil {
			return sqltypes.Null, err
		}
		a := args[0]
		if a.IsNull() {
			return sqltypes.Null, nil
		}
		if a.Kind() != sqltypes.KindString {
			return sqltypes.Null, fmt.Errorf("engine: %s of %s", name, a.Kind())
		}
		if name == "UPPER" {
			return sqltypes.NewString(strings.ToUpper(a.Str())), nil
		}
		return sqltypes.NewString(strings.ToLower(a.Str())), nil
	case "LENGTH":
		if err := wantArgs(name, args, 1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		if args[0].Kind() != sqltypes.KindString {
			return sqltypes.Null, fmt.Errorf("engine: LENGTH of %s", args[0].Kind())
		}
		return sqltypes.NewInt(int64(len(args[0].Str()))), nil
	case "CONCAT":
		var sb strings.Builder
		for _, a := range args {
			if a.IsNull() {
				continue // MySQL-ish: skip NULLs rather than poisoning
			}
			sb.WriteString(a.String())
		}
		return sqltypes.NewString(sb.String()), nil
	case "SUBSTR", "SUBSTRING":
		// SUBSTR(s, start [, length]) with 1-based start.
		if len(args) != 2 && len(args) != 3 {
			return sqltypes.Null, fmt.Errorf("engine: SUBSTR takes 2 or 3 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqltypes.Null, nil
		}
		if args[0].Kind() != sqltypes.KindString || args[1].Kind() != sqltypes.KindInt {
			return sqltypes.Null, fmt.Errorf("engine: SUBSTR argument types")
		}
		str := args[0].Str()
		start := int(args[1].Int()) - 1
		if start < 0 {
			start = 0
		}
		if start > len(str) {
			start = len(str)
		}
		end := len(str)
		if len(args) == 3 {
			if args[2].IsNull() || args[2].Kind() != sqltypes.KindInt {
				return sqltypes.Null, fmt.Errorf("engine: SUBSTR length must be an integer")
			}
			if n := int(args[2].Int()); n >= 0 && start+n < end {
				end = start + n
			}
		}
		return sqltypes.NewString(str[start:end]), nil
	case "TRIM":
		if err := wantArgs(name, args, 1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(strings.TrimSpace(args[0].Str())), nil
	case "REPLACE":
		if err := wantArgs(name, args, 3); err != nil {
			return sqltypes.Null, err
		}
		for _, a := range args {
			if a.IsNull() {
				return sqltypes.Null, nil
			}
		}
		return sqltypes.NewString(strings.ReplaceAll(args[0].Str(), args[1].Str(), args[2].Str())), nil
	case "PARTHASH":
		// PARTHASH(v) -> non-negative int64 hash; PARTHASH(v, n) -> hash
		// mod n. SQLoop's partitioner (§V-B) uses this as its hash
		// function so partition assignment is identical on every engine.
		if len(args) != 1 && len(args) != 2 {
			return sqltypes.Null, fmt.Errorf("engine: PARTHASH takes 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		h := int64(args[0].Hash() & math.MaxInt64)
		if len(args) == 2 {
			if args[1].IsNull() || args[1].Kind() != sqltypes.KindInt || args[1].Int() <= 0 {
				return sqltypes.Null, fmt.Errorf("engine: PARTHASH modulus must be a positive integer")
			}
			h %= args[1].Int()
		}
		return sqltypes.NewInt(h), nil
	default:
		return sqltypes.Null, fmt.Errorf("engine: unknown function %s", name)
	}
}

func wantArgs(name string, args []sqltypes.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("engine: %s takes %d argument(s), got %d", name, n, len(args))
	}
	return nil
}

// evalScalarSubquery runs a subquery and demands at most one row of one
// column; zero rows yield NULL.
func (env *evalEnv) evalScalarSubquery(t *sqlparser.Subquery) (sqltypes.Value, error) {
	if env.x == nil {
		return sqltypes.Null, fmt.Errorf("engine: subquery in invalid context")
	}
	rel, err := env.x.evalBody(t.Body)
	if err != nil {
		return sqltypes.Null, err
	}
	if len(rel.rows) == 0 {
		return sqltypes.Null, nil
	}
	if len(rel.rows) > 1 || len(rel.cols) != 1 {
		return sqltypes.Null, fmt.Errorf("engine: scalar subquery returned %d row(s), %d column(s)",
			len(rel.rows), len(rel.cols))
	}
	return rel.rows[0][0], nil
}

// collectAggregates gathers aggregate calls (by node identity) from the
// expression tree, skipping scalar-subquery bodies (they evaluate in
// their own scope).
func collectAggregates(e sqlparser.Expr, into *[]*sqlparser.FuncCall) {
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if _, ok := x.(*sqlparser.Subquery); ok {
			return false
		}
		if fc, ok := x.(*sqlparser.FuncCall); ok && isAggregate(fc.Name) {
			*into = append(*into, fc)
			return false // no nested aggregates
		}
		return true
	})
}

// knownScalarFunc reports whether the engine implements the scalar
// function.
func knownScalarFunc(name string) bool {
	switch name {
	case "COALESCE", "LEAST", "GREATEST", "ABS", "MOD", "FLOOR", "CEIL",
		"CEILING", "ROUND", "SQRT", "POWER", "POW", "PARTHASH",
		"UPPER", "LOWER", "LENGTH", "CONCAT", "SUBSTR", "SUBSTRING",
		"TRIM", "REPLACE":
		return true
	default:
		return false
	}
}

// validateExpr statically checks an expression against a frame so that
// reference errors surface even when no rows flow (real engines reject
// these at plan time). outCols, when non-nil, offers an extra resolution
// scope (ORDER BY aliases).
func (x *executor) validateExpr(e sqlparser.Expr, f *frame, outCols []string) error {
	var innerErr error
	sqlparser.WalkExpr(e, func(sub sqlparser.Expr) bool {
		if innerErr != nil {
			return false
		}
		switch t := sub.(type) {
		case *sqlparser.ColumnRef:
			if f.hasColumn(t.Table, t.Name) {
				return true
			}
			if t.Table == "" {
				for _, c := range outCols {
					if strings.EqualFold(c, t.Name) {
						return true
					}
				}
			}
			// Report ambiguity as its own error.
			if _, err := f.resolve(t.Table, t.Name); err != nil {
				innerErr = err
			}
			return true
		case *sqlparser.FuncCall:
			if !isAggregate(t.Name) && !knownScalarFunc(t.Name) {
				innerErr = fmt.Errorf("engine: unknown function %s", t.Name)
			}
			return true
		case *sqlparser.Param:
			if t.Index >= len(x.args) {
				innerErr = fmt.Errorf("engine: missing bind parameter %d", t.Index+1)
			}
			return true
		case *sqlparser.Subquery:
			// Subqueries evaluate in their own scope; only the static
			// column-arity of a scalar subquery is checkable here.
			if sel, ok := t.Body.(*sqlparser.Select); ok {
				explicit := 0
				star := false
				for _, it := range sel.Items {
					if it.Star {
						star = true
					} else {
						explicit++
					}
				}
				if !star && explicit > 1 {
					innerErr = fmt.Errorf("engine: scalar subquery returns %d columns", explicit)
				}
			}
			return false
		default:
			return true
		}
	})
	return innerErr
}

// evalBodyInScope runs a nested select body through the executor.
func (env *evalEnv) evalBodyInScope(b sqlparser.SelectBody) (*relation, error) {
	if env.x == nil {
		return nil, fmt.Errorf("engine: subquery in invalid context")
	}
	return env.x.evalBody(b)
}

// inSubqueryValues memoizes an IN-subquery's result set per statement
// (correlated subqueries are not supported, so one evaluation suffices).
func (env *evalEnv) inSubqueryValues(t *sqlparser.InExpr) ([]sqltypes.Value, error) {
	if env.x.inCache == nil {
		env.x.inCache = make(map[*sqlparser.InExpr][]sqltypes.Value)
	}
	if vals, ok := env.x.inCache[t]; ok {
		return vals, nil
	}
	rel, err := env.evalBodyInScope(t.Sub)
	if err != nil {
		return nil, err
	}
	if len(rel.cols) != 1 {
		return nil, fmt.Errorf("engine: IN subquery returns %d columns", len(rel.cols))
	}
	vals := make([]sqltypes.Value, len(rel.rows))
	for i, r := range rel.rows {
		vals[i] = r[0]
	}
	env.x.inCache[t] = vals
	return vals, nil
}

// castValue converts v to the named type with SQL CAST semantics.
func castValue(v sqltypes.Value, t sqltypes.ColumnType) (sqltypes.Value, error) {
	if v.IsNull() {
		return sqltypes.Null, nil
	}
	switch t {
	case sqltypes.TypeInt:
		switch v.Kind() {
		case sqltypes.KindInt:
			return v, nil
		case sqltypes.KindFloat:
			f := v.Float()
			if math.IsInf(f, 0) || math.IsNaN(f) {
				return sqltypes.Null, fmt.Errorf("engine: cannot cast %v to BIGINT", v)
			}
			return sqltypes.NewInt(int64(f)), nil
		case sqltypes.KindString:
			n, err := strconv.ParseInt(strings.TrimSpace(v.Str()), 10, 64)
			if err != nil {
				return sqltypes.Null, fmt.Errorf("engine: cannot cast %q to BIGINT", v.Str())
			}
			return sqltypes.NewInt(n), nil
		case sqltypes.KindBool:
			if v.Bool() {
				return sqltypes.NewInt(1), nil
			}
			return sqltypes.NewInt(0), nil
		}
	case sqltypes.TypeFloat:
		switch v.Kind() {
		case sqltypes.KindInt:
			return sqltypes.NewFloat(float64(v.Int())), nil
		case sqltypes.KindFloat:
			return v, nil
		case sqltypes.KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.Str()), 64)
			if err != nil {
				return sqltypes.Null, fmt.Errorf("engine: cannot cast %q to DOUBLE", v.Str())
			}
			return sqltypes.NewFloat(f), nil
		}
	case sqltypes.TypeString:
		return sqltypes.NewString(v.String()), nil
	case sqltypes.TypeBool:
		switch v.Kind() {
		case sqltypes.KindBool:
			return v, nil
		case sqltypes.KindInt:
			return sqltypes.NewBool(v.Int() != 0), nil
		}
	case sqltypes.TypeAny:
		return v, nil
	}
	return sqltypes.Null, fmt.Errorf("engine: cannot cast %s to %s", v.Kind(), t)
}

// likeMatch implements SQL LIKE: % matches any run, _ one character.
func likeMatch(s, pattern string) bool {
	// Iterative two-pointer matching with backtracking on the last %.
	si, pi := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si, pi = starSi, star+1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
