package engine

import (
	"fmt"
	"sync"
	"testing"

	"sqloop/internal/sqltypes"
)

// TestConcurrentSessionsDisjointTables exercises the per-table locking:
// many sessions hammer their own tables in parallel (the SQLoop
// partition pattern) with no shared state besides the catalog.
func TestConcurrentSessionsDisjointTables(t *testing.T) {
	eng := New(Config{})
	setup := eng.NewSession()
	const parts = 8
	for p := 0; p < parts; p++ {
		mustExec(t, setup, fmt.Sprintf(`CREATE TABLE part%d (id BIGINT PRIMARY KEY, v DOUBLE)`, p))
		for i := 0; i < 50; i++ {
			mustExec(t, setup, fmt.Sprintf(`INSERT INTO part%d VALUES (?, ?)`, p),
				sqltypes.NewInt(int64(i)), sqltypes.NewFloat(0))
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, parts)
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sess := eng.NewSession()
			for iter := 0; iter < 30; iter++ {
				if _, err := sess.Exec(fmt.Sprintf(`UPDATE part%d SET v = v + 1`, p)); err != nil {
					errs <- err
					return
				}
				if _, err := sess.Exec(fmt.Sprintf(`SELECT SUM(v) FROM part%d`, p)); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for p := 0; p < parts; p++ {
		res := mustExec(t, setup, fmt.Sprintf(`SELECT SUM(v) FROM part%d`, p))
		if got := res.Rows[0][0].Float(); got != 50*30 {
			t.Errorf("part%d sum = %v, want 1500", p, got)
		}
	}
}

// TestConcurrentReadersSharedTable checks shared read locks: concurrent
// readers of one table plus a writer on another make progress without
// deadlock.
func TestConcurrentReadersSharedTable(t *testing.T) {
	eng := New(Config{})
	setup := eng.NewSession()
	mustExec(t, setup, `CREATE TABLE shared (id BIGINT PRIMARY KEY, v BIGINT)`)
	mustExec(t, setup, `CREATE TABLE other (id BIGINT PRIMARY KEY, v BIGINT)`)
	for i := 0; i < 100; i++ {
		mustExec(t, setup, `INSERT INTO shared VALUES (?, ?)`, sqltypes.NewInt(int64(i)), sqltypes.NewInt(1))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 9)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := eng.NewSession()
			for i := 0; i < 50; i++ {
				res, err := sess.Exec(`SELECT COUNT(*) FROM shared`)
				if err != nil {
					errs <- err
					return
				}
				if res.Rows[0][0].Int() != 100 {
					errs <- fmt.Errorf("count = %v", res.Rows[0][0])
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := eng.NewSession()
		for i := 0; i < 50; i++ {
			if _, err := sess.Exec(`INSERT INTO other VALUES (?, 0)`, sqltypes.NewInt(int64(i))); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentMultiTableLockOrdering drives statements that lock
// overlapping table pairs in different textual orders; the sorted lock
// acquisition must prevent deadlock.
func TestConcurrentMultiTableLockOrdering(t *testing.T) {
	eng := New(Config{})
	setup := eng.NewSession()
	mustExec(t, setup, `CREATE TABLE alpha (id BIGINT PRIMARY KEY, v BIGINT)`)
	mustExec(t, setup, `CREATE TABLE beta (id BIGINT PRIMARY KEY, v BIGINT)`)
	mustExec(t, setup, `INSERT INTO alpha VALUES (1, 0)`)
	mustExec(t, setup, `INSERT INTO beta VALUES (1, 0)`)
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	stmts := [2]string{
		`UPDATE alpha SET v = alpha.v + b.v FROM beta AS b WHERE b.id = alpha.id`,
		`UPDATE beta SET v = beta.v + a.v FROM alpha AS a WHERE a.id = beta.id`,
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := eng.NewSession()
			for i := 0; i < 100; i++ {
				if _, err := sess.Exec(stmts[g]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
