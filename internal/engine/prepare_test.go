package engine

import (
	"fmt"
	"testing"

	"sqloop/internal/obs"
)

// TestPreparedDDLStalenessAcrossBackends prepares a statement, replaces
// the table underneath it, and re-executes the handle on every storage
// backend: the post-DDL execution must see the new catalog, never a
// pre-DDL plan.
func TestPreparedDDLStalenessAcrossBackends(t *testing.T) {
	for _, profile := range []string{"pgsim", "mysim", "mariasim"} {
		t.Run(profile, func(t *testing.T) {
			cfg, err := Profile(profile)
			if err != nil {
				t.Fatal(err)
			}
			eng := New(cfg)
			s := eng.NewSession()
			mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)`)
			mustExec(t, s, `INSERT INTO t VALUES (1, 10)`)
			id, err := s.Prepare(`SELECT v FROM t WHERE id = 1`)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.ExecPrepared(id, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Rows[0][0].Int(); got != 10 {
				t.Fatalf("pre-DDL value = %d, want 10", got)
			}

			objGen := eng.ObjectGen("t")
			mustExec(t, s, `DROP TABLE t`)
			mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)`)
			mustExec(t, s, `INSERT INTO t VALUES (1, 20)`)
			if eng.ObjectGen("t") == objGen {
				t.Fatal("DROP+CREATE of t did not bump its object generation")
			}
			res, err = s.ExecPrepared(id, nil)
			if err != nil {
				t.Fatalf("prepared handle after DDL: %v", err)
			}
			if got := res.Rows[0][0].Int(); got != 20 {
				t.Fatalf("post-DDL value = %d, want 20 (stale plan served?)", got)
			}
		})
	}
}

// TestStmtCacheSurvivesUnrelatedDDL is the relcache property: DDL on
// one object must not invalidate cached statements over another —
// that's what keeps the cache effective while iterative executions
// churn their working tables.
func TestStmtCacheSurvivesUnrelatedDDL(t *testing.T) {
	eng := New(Config{})
	s := eng.NewSession()
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 10)`)
	mustExec(t, s, `SELECT v FROM t`) // miss: fills the cache

	before := eng.StmtCacheStats()
	mustExec(t, s, `CREATE TABLE other (id BIGINT PRIMARY KEY)`)
	mustExec(t, s, `SELECT v FROM t`)
	after := eng.StmtCacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("hits %d -> %d: DDL on `other` invalidated a statement over `t`",
			before.Hits, after.Hits)
	}

	// DDL on t itself (an index changes how its statements would plan)
	// must invalidate: the next execution re-parses.
	mustExec(t, s, `CREATE INDEX t_v ON t (v)`)
	mustExec(t, s, `SELECT v FROM t`)
	final := eng.StmtCacheStats()
	if final.Hits != after.Hits {
		t.Fatalf("hits %d -> %d: DDL on t did not invalidate its cached statement",
			after.Hits, final.Hits)
	}
	if final.Misses <= after.Misses {
		t.Fatalf("misses %d -> %d: expected a re-parse after DDL on t",
			after.Misses, final.Misses)
	}
}

// TestStmtCacheEvictionAndMetrics exercises the LRU bound and the
// sqloop_stmt_cache_* counters.
func TestStmtCacheEvictionAndMetrics(t *testing.T) {
	eng := New(Config{StmtCacheSize: 2})
	reg := obs.NewRegistry()
	eng.SetMetrics(reg)
	s := eng.NewSession()
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)
	mustExec(t, s, `SELECT a FROM t`)
	mustExec(t, s, `SELECT a FROM t`) // hit
	for i := 0; i < 4; i++ {
		mustExec(t, s, fmt.Sprintf(`SELECT a + %d FROM t`, i)) // distinct texts force eviction
	}
	st := eng.StmtCacheStats()
	if st.Size > 2 {
		t.Fatalf("cache size = %d, exceeds configured max 2", st.Size)
	}
	if st.Hits < 1 || st.Misses < 6 || st.Evictions < 4 {
		t.Fatalf("stats = %+v, want >=1 hit, >=6 misses, >=4 evictions", st)
	}
	if got := reg.Counter("sqloop_stmt_cache_hits").Value(); got != st.Hits {
		t.Errorf("sqloop_stmt_cache_hits = %d, stats say %d", got, st.Hits)
	}
	if got := reg.Counter("sqloop_stmt_cache_misses").Value(); got != st.Misses {
		t.Errorf("sqloop_stmt_cache_misses = %d, stats say %d", got, st.Misses)
	}
	if got := reg.Counter("sqloop_stmt_cache_evictions").Value(); got != st.Evictions {
		t.Errorf("sqloop_stmt_cache_evictions = %d, stats say %d", got, st.Evictions)
	}
	if hr := st.HitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("hit rate = %v, want in (0, 1)", hr)
	}
}

// TestStmtCacheDisabled checks the escape hatch: a negative size turns
// caching off entirely (stats stay zero) while prepared handles — and
// their DDL revalidation — keep working.
func TestStmtCacheDisabled(t *testing.T) {
	eng := New(Config{StmtCacheSize: -1})
	s := eng.NewSession()
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 1)`)
	mustExec(t, s, `SELECT v FROM t`)
	mustExec(t, s, `SELECT v FROM t`)
	if st := eng.StmtCacheStats(); st != (StmtCacheStats{}) {
		t.Fatalf("disabled cache reported stats %+v", st)
	}

	id, err := s.Prepare(`SELECT v FROM t WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `DROP TABLE t`)
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 2)`)
	res, err := s.ExecPrepared(id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 2 {
		t.Fatalf("post-DDL value = %d, want 2", got)
	}
	if st := eng.StmtCacheStats(); st != (StmtCacheStats{}) {
		t.Fatalf("disabled cache reported stats %+v after prepared execution", st)
	}
}
