package engine

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"sqloop/internal/obs"
	"sqloop/internal/pager"
	"sqloop/internal/sqltypes"
	"sqloop/internal/storage"
	"sqloop/internal/vec"
)

// lowerMorsels shrinks the morsel granule to one batch window so the
// parallel path engages on test-sized fixtures, restoring it on cleanup.
// Tests using it must not run in parallel with each other.
func lowerMorsels(t *testing.T) {
	t.Helper()
	old := morselRows
	morselRows = vec.BatchSize
	t.Cleanup(func() { morselRows = old })
}

// parRowsBig is sized to span several lowered morsels (> 2*1024 rows).
const parRowsBig = 3000

// loadParCorpus loads the large-fixture tables the worker-count sweep
// runs over: big (NULL rows, exact-binary floats, repeated group keys)
// and dim (duplicate and NULL join keys, itself above the parallel
// build threshold).
func loadParCorpus(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE big (id BIGINT PRIMARY KEY, a BIGINT, f DOUBLE, name TEXT, flag BOOLEAN)`)
	for i := 0; i < parRowsBig; i++ {
		if i%97 == 0 {
			mustExec(t, s, `INSERT INTO big VALUES (?, NULL, NULL, NULL, NULL)`, sqltypes.NewInt(int64(i)))
			continue
		}
		mustExec(t, s, `INSERT INTO big VALUES (?, ?, ?, ?, ?)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i%61)),
			sqltypes.NewFloat(float64(i%13)*0.5), sqltypes.NewString(fmt.Sprintf("n_%d", i%50)),
			sqltypes.NewBool(i%3 == 0))
	}
	mustExec(t, s, `CREATE TABLE dim (a BIGINT, label TEXT)`)
	for i := 0; i < 2500; i++ {
		if i%500 == 250 {
			mustExec(t, s, `INSERT INTO dim VALUES (NULL, 'none')`)
			continue
		}
		mustExec(t, s, `INSERT INTO dim VALUES (?, ?)`,
			sqltypes.NewInt(int64(i%1250)), sqltypes.NewString(fmt.Sprintf("d_%d", i%40)))
	}
}

// parCorpus exercises every parallel region (filter, projection,
// grouping, join build, join probe) plus the stages downstream of the
// reassembled morsels (DISTINCT, ORDER BY, HAVING, LIMIT). Queries
// without ORDER BY pin the morsel-order reassembly contract: output row
// and group order must match serial execution exactly.
var parCorpus = []string{
	// Filters through the batch kernels.
	`SELECT id, a FROM big WHERE a * 2 + 1 > 40 ORDER BY id`,
	`SELECT id FROM big WHERE a IS NULL ORDER BY id`,
	`SELECT id FROM big WHERE flag OR a > 55 ORDER BY id`,
	`SELECT id FROM big WHERE name LIKE 'n_1%' ORDER BY id`,
	`SELECT COUNT(*) FROM big WHERE f BETWEEN 1.0 AND 4.5`,
	`SELECT id, a FROM big WHERE a % 7 = 3`, // no ORDER BY: raw morsel order
	// Projections.
	`SELECT id, a * 2, f + 0.5, name FROM big ORDER BY id LIMIT 50`,
	`SELECT id, CASE WHEN a > 30 THEN 'hi' ELSE 'lo' END, COALESCE(a, -1) FROM big ORDER BY id LIMIT 40 OFFSET 2950`,
	`SELECT id, a FROM big`, // full projection, raw morsel order
	// Grouping: NULL keys, expression keys, floats, HAVING, DISTINCT agg.
	`SELECT a, COUNT(*), SUM(f) FROM big GROUP BY a ORDER BY 1`,
	`SELECT a % 7, MIN(f), MAX(f), AVG(f) FROM big WHERE a IS NOT NULL GROUP BY a % 7 ORDER BY 1`,
	`SELECT a, COUNT(*) FROM big GROUP BY a HAVING COUNT(*) > 40 ORDER BY a`,
	`SELECT flag, COUNT(DISTINCT a) FROM big GROUP BY flag ORDER BY 1`,
	`SELECT name, SUM(a), COUNT(*) FROM big GROUP BY name ORDER BY 1`,
	`SELECT a, COUNT(*) FROM big GROUP BY a`, // no ORDER BY: first-seen group order
	`SELECT COUNT(*), SUM(a), MIN(f), MAX(name), AVG(f) FROM big`,
	`SELECT SUM(a) FROM big WHERE a > 1000`, // empty input, global aggregate
	// Hash joins: parallel build (dim > threshold) and parallel probe.
	`SELECT COUNT(*) FROM big JOIN dim ON big.a = dim.a`,
	`SELECT big.id, dim.label FROM big JOIN dim ON big.a = dim.a AND big.id > 2900 ORDER BY big.id, dim.label`,
	`SELECT COUNT(*) FROM big LEFT JOIN dim ON big.a = dim.a`,
	`SELECT big.id, dim.label FROM big JOIN dim ON big.a = dim.a WHERE big.id % 101 = 0`, // no ORDER BY
	// DISTINCT and set ops over parallel-projected outputs.
	`SELECT DISTINCT a FROM big ORDER BY 1`,
	`SELECT a FROM big WHERE a < 5 UNION SELECT a FROM dim WHERE a < 5 ORDER BY 1`,
}

// TestParallelWorkerEquivalence is the worker-count sweep: the large
// fixture corpus must render type-exactly identical at workers 1/2/4/8,
// with DisableParallel on and off.
func TestParallelWorkerEquivalence(t *testing.T) {
	lowerMorsels(t)

	serial := New(Config{Workers: 1})
	ss := serial.NewSession()
	loadParCorpus(t, ss)
	want := make([]string, len(parCorpus))
	for i, q := range parCorpus {
		want[i] = renderResult(mustExec(t, ss, q))
	}

	for _, w := range []int{2, 4, 8} {
		for _, disable := range []bool{false, true} {
			eng := New(Config{Workers: w, DisableParallel: disable})
			reg := obs.NewRegistry()
			eng.SetMetrics(reg)
			s := eng.NewSession()
			loadParCorpus(t, s)
			for i, q := range parCorpus {
				got := renderResult(mustExec(t, s, q))
				if got != want[i] {
					t.Fatalf("workers=%d disable=%v %s:\npar:\n%s\nserial:\n%s", w, disable, q, got, want[i])
				}
			}
			morsels := reg.Counter("sqloop_parallel_morsels_total").Value()
			if disable && morsels != 0 {
				t.Errorf("workers=%d DisableParallel ran %d morsels", w, morsels)
			}
			if !disable && morsels == 0 {
				t.Errorf("workers=%d ran zero parallel morsels over the corpus", w)
			}
			if !disable && reg.Histogram("sqloop_parallel_worker_busy_seconds").Count() != morsels {
				t.Errorf("workers=%d busy-seconds observations != morsel count", w)
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestParallelSmallCorpusEquivalence runs the PR 8 vectorization corpus
// (small fixtures, below the parallel threshold even when lowered) at
// every worker count: plumbing a worker pool through must not perturb
// serial-sized queries.
func TestParallelSmallCorpusEquivalence(t *testing.T) {
	corpus := []string{
		`SELECT id, a FROM nums WHERE a * 2 + 1 > 7 ORDER BY id`,
		`SELECT id FROM nums WHERE a IN (1, 3, 5, NULL) ORDER BY id`,
		`SELECT id, CASE WHEN a > 5 THEN 'hi' ELSE 'lo' END, COALESCE(a, -1) FROM nums ORDER BY id`,
		`SELECT a, COUNT(*), SUM(f) FROM nums GROUP BY a ORDER BY 1`,
		`SELECT k, COUNT(*), SUM(v) FROM mix GROUP BY k ORDER BY 2, 3`,
		`SELECT flag, COUNT(DISTINCT a) FROM nums GROUP BY flag ORDER BY 1`,
		`SELECT n.id, o.label FROM nums AS n LEFT JOIN other AS o ON n.a = o.a ORDER BY n.id, o.label`,
		`SELECT id FROM nums WHERE a = (SELECT MIN(a) FROM nums) ORDER BY id`,
		`SELECT a FROM nums EXCEPT SELECT a FROM other ORDER BY 1`,
		`SELECT id FROM nums ORDER BY id LIMIT 5 OFFSET 3`,
	}
	serial := New(Config{Workers: 1}).NewSession()
	loadCompileCorpus(t, serial)
	for _, w := range []int{2, 4, 8} {
		s := New(Config{Workers: w}).NewSession()
		loadCompileCorpus(t, s)
		for _, q := range corpus {
			got := renderResult(mustExec(t, s, q))
			want := renderResult(mustExec(t, serial, q))
			if got != want {
				t.Fatalf("workers=%d %s:\npar:\n%s\nserial:\n%s", w, q, got, want)
			}
		}
	}
}

// TestParallelErrorIdentity pins the first-error-in-row-order contract:
// two distinct failing rows live in different morsels, and every worker
// count must surface exactly the serial path's error — the one from the
// lower-indexed row — for filters, projections, grouped aggregates and
// join probe keys.
func TestParallelErrorIdentity(t *testing.T) {
	lowerMorsels(t)

	const n = 4000
	load := func(t *testing.T, s *Session) {
		t.Helper()
		mustExec(t, s, `CREATE TABLE t (a BIGINT, b BIGINT, name TEXT)`)
		for i := 0; i < n; i++ {
			b := int64(i%7 + 1)
			name := fmt.Sprintf("%d", i)
			switch i {
			case 2100: // morsel 2 under the lowered granule
				b, name = 0, "badA"
			case 3500: // morsel 3
				b, name = 0, "badB"
			}
			mustExec(t, s, `INSERT INTO t VALUES (?, ?, ?)`,
				sqltypes.NewInt(int64(i)), sqltypes.NewInt(b), sqltypes.NewString(name))
		}
	}
	queries := []string{
		`SELECT a FROM t WHERE 10 / b > 1`,                      // filter kernel error
		`SELECT a, 10 / b FROM t`,                               // projection kernel error
		`SELECT CAST(name AS BIGINT) FROM t WHERE a >= 2000`,    // value-carrying error: must name badA, not badB
		`SELECT b, SUM(10 / b) FROM t GROUP BY b`,               // grouped argument error
		`SELECT x.a FROM t AS x JOIN t AS y ON 10 / x.b = y.a`,  // probe key error
		`SELECT COUNT(*) FROM t AS x JOIN t AS y ON x.a = 10 / y.b`, // build key error
	}
	serial := New(Config{Workers: 1}).NewSession()
	load(t, serial)
	want := make([]string, len(queries))
	for i, q := range queries {
		_, err := serial.Exec(q)
		if err == nil {
			t.Fatalf("serial %s: expected error", q)
		}
		want[i] = err.Error()
	}
	for _, w := range []int{2, 4, 8} {
		s := New(Config{Workers: w}).NewSession()
		load(t, s)
		for i, q := range queries {
			_, err := s.Exec(q)
			if err == nil {
				t.Fatalf("workers=%d %s: expected error", w, q)
			}
			if err.Error() != want[i] {
				t.Fatalf("workers=%d %s: error mismatch:\npar:    %v\nserial: %s", w, q, err, want[i])
			}
		}
	}
}

// TestEngineCloseDrainsPool closes an engine while parallel queries are
// in flight: the queries must complete without error (the dispatching
// goroutine's inline claim loop needs no pool), the worker goroutines
// must all exit (no leak), and Close plus post-Close queries must not
// panic.
func TestEngineCloseDrainsPool(t *testing.T) {
	lowerMorsels(t)

	before := runtime.NumGoroutine()
	// A mild scan cost stretches the queries so Close lands mid-flight.
	eng := New(Config{Workers: 8, Cost: &CostModel{PerRowScan: time.Microsecond, Scale: 1}})
	s := eng.NewSession()
	mustExec(t, s, `CREATE TABLE t (a BIGINT, b BIGINT)`)
	for i := 0; i < 3000; i++ {
		mustExec(t, s, `INSERT INTO t VALUES (?, ?)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i%13)))
	}
	want := renderResult(mustExec(t, s, `SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b ORDER BY 1`))

	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			res, err := eng.NewSession().Exec(`SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b ORDER BY 1`)
			if err == nil && renderResult(res) != want {
				err = fmt.Errorf("result changed under concurrent Close")
			}
			done <- err
		}()
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("query racing Close: %v", err)
		}
	}
	// Queries after Close still work (serially, via the inline claim loop).
	got := renderResult(mustExec(t, s, `SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b ORDER BY 1`))
	if got != want {
		t.Fatalf("post-Close result changed:\n%s\nvs\n%s", got, want)
	}
	if err := eng.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// goleak-style count check: every pool goroutine must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEffectiveWorkers pins the Config resolution: DisableParallel and
// sub-1 values force serial, 0 tracks GOMAXPROCS.
func TestEffectiveWorkers(t *testing.T) {
	if got := effectiveWorkers(Config{Workers: 4}); got != 4 {
		t.Errorf("Workers=4: got %d", got)
	}
	if got := effectiveWorkers(Config{Workers: 4, DisableParallel: true}); got != 1 {
		t.Errorf("DisableParallel: got %d", got)
	}
	if got := effectiveWorkers(Config{Workers: -3}); got != 1 {
		t.Errorf("Workers=-3: got %d", got)
	}
	if got := effectiveWorkers(Config{}); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers=0: got %d, want GOMAXPROCS", got)
	}
	eng := New(Config{Workers: 6})
	defer eng.Close()
	if eng.Workers() != 6 {
		t.Errorf("Engine.Workers() = %d, want 6", eng.Workers())
	}
}

// TestBackgroundCheckpointerBoundsWAL: with Config.WALCheckpointBytes
// set, a long DML-only run (no middleware snapshots, no explicit
// Checkpoint calls) must keep each table's WAL bounded; without it the
// WAL grows with the workload.
func TestBackgroundCheckpointerBoundsWAL(t *testing.T) {
	const threshold = 2048
	run := func(ckpt int64) int64 {
		eng := New(Config{Backend: storage.KindDisk, DataDir: t.TempDir(), WALCheckpointBytes: ckpt})
		defer eng.Close()
		s := eng.NewSession()
		mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v TEXT)`)
		for i := 0; i < 600; i++ {
			mustExec(t, s, `INSERT INTO t VALUES (?, ?)`,
				sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("value-%d", i)))
		}
		tbl, ok := eng.lookupTable("t")
		if !ok {
			t.Fatal("table t missing")
		}
		ds := tbl.store.(*pager.DiskStore)
		if ckpt > 0 {
			// Quiesce: give the checkpointer a few ticks to truncate the
			// final tail.
			deadline := time.Now().Add(2 * time.Second)
			for ds.WALSize() > ckpt && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
		}
		return ds.WALSize()
	}
	bounded := run(threshold)
	unbounded := run(0)
	if bounded > threshold {
		t.Errorf("background checkpointer left WAL at %d bytes, threshold %d", bounded, threshold)
	}
	if unbounded <= threshold {
		t.Errorf("control run without checkpointer ended at %d bytes; workload too small to prove bounding", unbounded)
	}
	// Background truncation must not cost durability: a run under the
	// checkpointer, closed and reopened from the same directory, recovers
	// every committed row.
	dir := t.TempDir()
	eng := New(Config{Backend: storage.KindDisk, DataDir: dir, WALCheckpointBytes: threshold})
	s := eng.NewSession()
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v TEXT)`)
	for i := 0; i < 200; i++ {
		mustExec(t, s, `INSERT INTO t VALUES (?, ?)`, sqltypes.NewInt(int64(i)), sqltypes.NewString("x"))
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := New(Config{Backend: storage.KindDisk, DataDir: dir})
	defer reopened.Close()
	res := mustExec(t, reopened.NewSession(), `SELECT COUNT(*) FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][0].GoValue() != int64(200) {
		t.Fatalf("recovered %s rows, want 200", renderResult(res))
	}
}
