package engine

import (
	"os"
	"path/filepath"
	"testing"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
	"sqloop/internal/storage"
)

// TestDiskBackendSQL runs the SQL surface end to end on the durable
// backend: DDL, DML, transactions with rollback, TRUNCATE, DROP and an
// engine restart that recovers the data from disk.
func TestDiskBackendSQL(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Backend:         storage.KindDisk,
		Dialect:         sqlparser.DialectPGSim,
		DataDir:         dir,
		BufferPoolPages: 64,
	}
	e := New(cfg)
	s := e.NewSession()
	mustExec := func(sql string) *Result {
		t.Helper()
		res, err := s.Exec(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	mustExec(`CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)`)
	mustExec(`INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three')`)
	mustExec(`UPDATE kv SET v = 'TWO' WHERE k = 2`)
	mustExec(`DELETE FROM kv WHERE k = 3`)

	res := mustExec(`SELECT k, v FROM kv ORDER BY k`)
	if len(res.Rows) != 2 || res.Rows[1][1].Str() != "TWO" {
		t.Fatalf("rows = %v", res.Rows)
	}

	// Rolled-back work must not survive.
	mustExec(`BEGIN`)
	mustExec(`INSERT INTO kv VALUES (9, 'phantom')`)
	mustExec(`ROLLBACK`)
	if res := mustExec(`SELECT * FROM kv WHERE k = 9`); len(res.Rows) != 0 {
		t.Fatal("rolled-back row visible")
	}

	mustExec(`CREATE TABLE copy AS SELECT k, v FROM kv`)
	if res := mustExec(`SELECT COUNT(*) FROM copy`); res.Rows[0][0].Int() != 2 {
		t.Fatalf("CTAS count = %v", res.Rows)
	}

	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	mustExec(`TRUNCATE TABLE copy`)
	if e.TableLen("copy") != 0 {
		t.Fatal("TRUNCATE left rows")
	}
	mustExec(`DROP TABLE copy`)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A second engine over the same directory recovers the catalog from
	// the persisted manifest: kv is queryable with its pre-restart
	// contents, dropped copy stays dropped, and re-creating a recovered
	// table is rejected like any duplicate.
	e2 := New(cfg)
	s2 := e2.NewSession()
	res2, err := s2.Exec(`SELECT k, v FROM kv ORDER BY k`)
	if err != nil {
		t.Fatalf("query recovered table: %v", err)
	}
	if len(res2.Rows) != 2 || res2.Rows[0][0].Int() != 1 || res2.Rows[1][1].Str() != "TWO" {
		t.Fatalf("recovered rows = %v", res2.Rows)
	}
	if _, err := s2.Exec(`SELECT * FROM copy`); err == nil {
		t.Fatal("dropped table recovered")
	}
	if _, err := s2.Exec(`CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)`); err == nil {
		t.Fatal("re-creating a recovered table did not error")
	}
	if _, err := s2.Exec(`INSERT INTO kv VALUES (5, 'five')`); err != nil {
		t.Fatalf("insert after restart: %v", err)
	}
	if e2.TableLen("kv") != 3 {
		t.Fatalf("TableLen = %d", e2.TableLen("kv"))
	}
	if err := e2.Close(); err != nil {
		t.Fatalf("Close 2: %v", err)
	}
}

// TestDiskBackendCatalogRecovery covers the manifest round trip in
// depth: schema fidelity (types and primary-key position), synthetic
// rowid tables resuming their key allocator past recovered rows, and a
// corrupt manifest refusing statements instead of starting empty.
func TestDiskBackendCatalogRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Backend: storage.KindDisk,
		Dialect: sqlparser.DialectPGSim,
		DataDir: dir,
	}
	e := New(cfg)
	s := e.NewSession()
	mustExec := func(sess *Session, sql string) *Result {
		t.Helper()
		res, err := sess.Exec(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	mustExec(s, `CREATE TABLE typed (id BIGINT PRIMARY KEY, f DOUBLE, s TEXT, b BOOLEAN)`)
	mustExec(s, `INSERT INTO typed VALUES (10, 1.5, 'x', TRUE)`)
	// No PRIMARY KEY: rows get synthetic rowid keys.
	mustExec(s, `CREATE TABLE bag (n BIGINT)`)
	mustExec(s, `INSERT INTO bag VALUES (1), (2), (3)`)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := New(cfg)
	s2 := e2.NewSession()
	tbl, ok := e2.lookupTable("typed")
	if !ok {
		t.Fatal("typed not recovered")
	}
	if tbl.pkCol != 0 {
		t.Fatalf("pkCol = %d, want 0", tbl.pkCol)
	}
	wantTypes := []sqltypes.ColumnType{sqltypes.TypeInt, sqltypes.TypeFloat, sqltypes.TypeString, sqltypes.TypeBool}
	for i, want := range wantTypes {
		if got := tbl.schema.Columns[i].Type; got != want {
			t.Fatalf("column %d type = %v, want %v", i, got, want)
		}
	}
	// A typed insert must still coerce/reject against the recovered schema.
	if _, err := s2.Exec(`INSERT INTO typed VALUES ('nope', 1.0, 'x', FALSE)`); err == nil {
		t.Fatal("type check lost after recovery")
	}
	// Synthetic keys must not collide with recovered rows.
	mustExec(s2, `INSERT INTO bag VALUES (4), (5)`)
	if res := mustExec(s2, `SELECT COUNT(*) FROM bag`); res.Rows[0][0].Int() != 5 {
		t.Fatalf("bag count = %v (rowid collision?)", res.Rows)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt manifest: the engine must refuse statements, not start
	// empty over live table files.
	if err := os.WriteFile(filepath.Join(dir, diskCatalogFile), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	e3 := New(cfg)
	if _, err := e3.NewSession().Exec(`SELECT 1`); err == nil {
		t.Fatal("corrupt catalog did not refuse statements")
	}
	_ = e3.Close()
}

// TestDiskBackendTempDir checks the zero-config path: no DataDir means
// a temp directory created lazily and removed by Close.
func TestDiskBackendTempDir(t *testing.T) {
	e := New(Config{Backend: storage.KindDisk, Dialect: sqlparser.DialectPGSim})
	s := e.NewSession()
	if _, err := s.Exec(`CREATE TABLE t (a INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO t VALUES (7)`); err != nil {
		t.Fatal(err)
	}
	e.pagerMu.Lock()
	dir := e.pagerDir
	e.pagerMu.Unlock()
	if dir == "" {
		t.Fatal("no temp data dir recorded")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err == nil {
		t.Fatalf("temp dir %s survived Close", dir)
	}
}
