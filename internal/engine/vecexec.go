package engine

import (
	"errors"
	"fmt"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
	"sqloop/internal/vec"
)

// errVecFallback is the sentinel a kernel returns when it cannot
// reproduce the row path's behaviour for some element of the batch. It
// is never surfaced: the executor discards the batch's partial results
// and re-runs the window row-at-a-time, which either succeeds (the
// kernel was conservative) or raises the interpreter's own error.
var errVecFallback = errors.New("engine: vectorized kernel fallback")

// vecExec is the per-execution batch context: one window of the input
// rows plus the lazily-extracted column vectors and the result-slot
// pool the compiled batch plan writes into. Slot and column vectors
// are reused across windows, so steady-state batches allocate nothing.
type vecExec struct {
	x   *executor
	f   *frame
	env *evalEnv // shared environment for row-adapter nodes

	rows []sqltypes.Row // full input
	lo   int            // window start in rows
	n    int            // window length
	win  []sqltypes.Row // rows[lo : lo+n]

	cols   []*vec.Vec // extracted columns by frame offset
	colsOk []bool
	slots  []*vec.Vec
	sels   [][]int
	selAll []int // identity selection over the window
}

func (x *executor) newVecExec(f *frame, rows []sqltypes.Row) *vecExec {
	return &vecExec{
		x:      x,
		f:      f,
		env:    &evalEnv{frame: f, x: x},
		rows:   rows,
		cols:   make([]*vec.Vec, f.width),
		colsOk: make([]bool, f.width),
	}
}

// window positions the context over rows[lo:hi] and invalidates the
// column cache.
func (vx *vecExec) window(lo, hi int) {
	vx.lo, vx.n = lo, hi-lo
	vx.win = vx.rows[lo:hi]
	for i := range vx.colsOk {
		vx.colsOk[i] = false
	}
	vx.selAll = vec.FillSel(vx.selAll, vx.n)
	vx.x.eng.vecBatches.Add(1)
}

// col returns the extracted column vector for frame offset off,
// transposing it from the window's rows on first use.
func (vx *vecExec) col(off int) *vec.Vec {
	if !vx.colsOk[off] {
		if vx.cols[off] == nil {
			vx.cols[off] = &vec.Vec{}
		}
		vx.cols[off].FromRows(vx.win, off, vx.n)
		vx.colsOk[off] = true
	}
	return vx.cols[off]
}

// slot returns node slot id's result vector.
func (vx *vecExec) slot(id int) *vec.Vec {
	for len(vx.slots) <= id {
		vx.slots = append(vx.slots, nil)
	}
	if vx.slots[id] == nil {
		vx.slots[id] = &vec.Vec{}
	}
	return vx.slots[id]
}

// selSlot returns a reusable selection scratch buffer.
func (vx *vecExec) selSlot(id int) []int {
	for len(vx.sels) <= id {
		vx.sels = append(vx.sels, nil)
	}
	return vx.sels[id]
}

// setSelSlot stores a (possibly regrown) selection buffer back.
func (vx *vecExec) setSelSlot(id int, s []int) { vx.sels[id] = s }

// vecOK reports whether this execution may take the batch path: it
// rides on the compiled programs, so disabling expression compilation
// disables it too.
func (x *executor) vecOK() bool {
	return !x.eng.cfg.DisableExprCompile && !x.eng.cfg.DisableVectorize
}

// vecPlanFor returns the (possibly cached) single-expression batch
// plan for e under f, or nil when the batch path is off or has nothing
// to vectorize in e.
func (x *executor) vecPlanFor(e sqlparser.Expr, f *frame) *vplan {
	if !x.vecOK() {
		return nil
	}
	var k progKey
	if x.progs != nil {
		k = progKey{expr: e, sig: f.sig()}
		if vp, ok := x.progs.getVec(k); ok {
			return vp
		}
	}
	vp := compileVecPlan([]sqlparser.Expr{e}, f)
	if !vp.useVec() {
		vp = nil
	}
	if x.progs != nil {
		x.progs.putVec(k, vp)
	}
	return vp
}

// vecJoinPlan returns the batch plan for a hash join's probe-side key
// expressions, cached under the ON node (the key split from a given ON
// clause and frame is deterministic). nil when the batch path is off or
// no key has a native kernel.
func (x *executor) vecJoinPlan(on sqlparser.Expr, keys []sqlparser.Expr, f *frame) *vplan {
	if !x.vecOK() {
		return nil
	}
	var k progKey
	if x.progs != nil {
		k = progKey{expr: on, sig: f.sig()}
		if vp, ok := x.progs.getVec(k); ok {
			return vp
		}
	}
	vp := compileVecPlan(keys, f)
	if !vp.useVec() {
		vp = nil
	}
	if x.progs != nil {
		x.progs.putVec(k, vp)
	}
	return vp
}

// vecFilter applies the compiled WHERE batch plan to src.rows,
// returning the rows the predicate holds for. A batch whose kernels
// error is re-run through the compiled row program, reproducing the
// row path's results and error timing exactly.
func (x *executor) vecFilter(vp *vplan, where sqlparser.Expr, src *source) ([]sqltypes.Row, error) {
	vx := x.newVecExec(src.frame, src.rows)
	kept := src.rows[:0:0]
	node := &vp.nodes[0]
	var selOut []int
	var rowProg program
	var env *evalEnv
	cur := vec.NewCursor(len(src.rows))
	for {
		lo, hi, ok := cur.Next()
		if !ok {
			break
		}
		vx.window(lo, hi)
		out, err := node.eval(vx, vx.selAll)
		if err != nil {
			x.eng.vecFallbacks.Add(1)
			if rowProg == nil {
				rowProg = x.prog(where, src.frame)
				env = &evalEnv{frame: src.frame, x: x}
			}
			for _, r := range vx.win {
				env.row = r
				v, err := rowProg(env)
				if err != nil {
					return nil, err
				}
				if v.IsTrue() {
					kept = append(kept, r)
				}
			}
			continue
		}
		selOut = out.TrueSel(vx.selAll, selOut[:0])
		for _, i := range selOut {
			kept = append(kept, vx.win[i])
		}
	}
	return kept, nil
}

// vecProject materializes the non-grouped projection batch-at-a-time:
// each item's plan writes a column vector, and output rows are
// assembled column-by-column. Output rows carry no environment (the
// caller only takes this path when ORDER BY keys read the output row).
func (x *executor) vecProject(plan *selPlan, src *source) ([]outRow, error) {
	vx := x.newVecExec(src.frame, src.rows)
	outputs := make([]outRow, 0, len(src.rows))
	nitems := len(plan.vecItems.nodes)
	cur := vec.NewCursor(len(src.rows))
	for {
		lo, hi, ok := cur.Next()
		if !ok {
			break
		}
		vx.window(lo, hi)
		// One backing array per window: output rows are independent
		// full-capacity sub-slices, so later appends cannot alias.
		backing := make([]sqltypes.Value, vx.n*nitems)
		rows := make([]sqltypes.Row, vx.n)
		for i := range rows {
			rows[i] = backing[i*nitems : (i+1)*nitems : (i+1)*nitems]
		}
		failed := false
		for j := range plan.vecItems.nodes {
			v, err := plan.vecItems.nodes[j].eval(vx, vx.selAll)
			if err != nil {
				failed = true
				break
			}
			for i := 0; i < vx.n; i++ {
				rows[i][j] = v.Get(i)
			}
		}
		if failed {
			// Row-path fallback for this window (identical to the
			// non-vectorized projection loop, including its error).
			x.eng.vecFallbacks.Add(1)
			for _, r := range vx.win {
				rowEnv := &evalEnv{frame: src.frame, x: x, row: r}
				row, err := projectRow(plan.itemProgs, rowEnv)
				if err != nil {
					return nil, err
				}
				outputs = append(outputs, outRow{row: row, env: rowEnv})
			}
			continue
		}
		for i := 0; i < vx.n; i++ {
			outputs = append(outputs, outRow{row: rows[i]})
		}
	}
	return outputs, nil
}

// vecAgg accumulates one vectorized aggregate across batches, indexed
// by dense group id. The accumulator mirrors computeAggregate exactly:
// NULL skipping, SUM's int64-overflow promotion to float, MIN/MAX via
// sqltypes.Compare.
type vecAgg struct {
	fc    *sqlparser.FuncCall
	node  *vnode
	count []int64
	sumI  []int64
	sumF  []float64
	isF   []bool
	best  []sqltypes.Value
}

func (a *vecAgg) grow(gid int) {
	for len(a.count) <= gid {
		a.count = append(a.count, 0)
		a.sumI = append(a.sumI, 0)
		a.sumF = append(a.sumF, 0)
		a.isF = append(a.isF, false)
		a.best = append(a.best, sqltypes.Null)
	}
}

func (a *vecAgg) accumulate(gid int, v sqltypes.Value) error {
	if v.IsNull() {
		return nil
	}
	a.count[gid]++
	switch a.fc.Name {
	case "COUNT":
	case "SUM", "AVG":
		if !v.IsNumeric() {
			return fmt.Errorf("engine: %s of non-numeric value", a.fc.Name)
		}
		if v.Kind() == sqltypes.KindFloat {
			if !a.isF[gid] {
				a.isF[gid] = true
				a.sumF[gid] = float64(a.sumI[gid])
			}
			a.sumF[gid] += v.Float()
		} else if a.isF[gid] {
			a.sumF[gid] += v.Float()
		} else if s, ok := addInt64(a.sumI[gid], v.Int()); ok {
			a.sumI[gid] = s
		} else {
			a.isF[gid] = true
			a.sumF[gid] = float64(a.sumI[gid]) + float64(v.Int())
		}
	case "MIN", "MAX":
		if a.best[gid].IsNull() {
			a.best[gid] = v
			return nil
		}
		c, err := sqltypes.Compare(v, a.best[gid])
		if err != nil {
			return err
		}
		if (a.fc.Name == "MIN" && c < 0) || (a.fc.Name == "MAX" && c > 0) {
			a.best[gid] = v
		}
	default:
		return errVecFallback
	}
	return nil
}

// finalize produces the group's aggregate value, mirroring
// computeAggregate's result assembly.
func (a *vecAgg) finalize(gid int) sqltypes.Value {
	if gid >= len(a.count) {
		a.grow(gid)
	}
	switch a.fc.Name {
	case "COUNT":
		return sqltypes.NewInt(a.count[gid])
	case "SUM":
		if a.count[gid] == 0 {
			return sqltypes.Null
		}
		if a.isF[gid] {
			return sqltypes.NewFloat(a.sumF[gid])
		}
		return sqltypes.NewInt(a.sumI[gid])
	case "AVG":
		if a.count[gid] == 0 {
			return sqltypes.Null
		}
		s := a.sumF[gid]
		if !a.isF[gid] {
			s = float64(a.sumI[gid])
		}
		return sqltypes.NewFloat(s / float64(a.count[gid]))
	default: // MIN, MAX
		return a.best[gid]
	}
}

// mergeFrom folds another accumulator's partial state for group `from`
// into this accumulator's group `to`, with computeAggregate's exact
// semantics: counts add, SUM/AVG partial sums combine under the same
// float promotion and int64-overflow promotion rules, and MIN/MAX
// resolve via sqltypes.Compare with NULLs (untouched groups) skipped.
// The morsel-parallel grouped path uses it to merge per-worker
// accumulator tables; a Compare error makes the caller fall back to the
// serial row path, like any other grouped-batch error.
func (a *vecAgg) merge(src *vecAgg, from, to int) error {
	if from >= len(src.count) {
		return nil // the source accumulator never touched this group
	}
	a.count[to] += src.count[from]
	switch a.fc.Name {
	case "COUNT":
	case "SUM", "AVG":
		if src.isF[from] {
			if !a.isF[to] {
				a.isF[to] = true
				a.sumF[to] = float64(a.sumI[to])
			}
			a.sumF[to] += src.sumF[from]
		} else if a.isF[to] {
			a.sumF[to] += float64(src.sumI[from])
		} else if s, ok := addInt64(a.sumI[to], src.sumI[from]); ok {
			a.sumI[to] = s
		} else {
			a.isF[to] = true
			a.sumF[to] = float64(a.sumI[to]) + float64(src.sumI[from])
		}
	case "MIN", "MAX":
		if src.best[from].IsNull() {
			return nil
		}
		if a.best[to].IsNull() {
			a.best[to] = src.best[from]
			return nil
		}
		c, err := sqltypes.Compare(src.best[from], a.best[to])
		if err != nil {
			return err
		}
		if (a.fc.Name == "MIN" && c < 0) || (a.fc.Name == "MAX" && c > 0) {
			a.best[to] = src.best[from]
		}
	}
	return nil
}

// vecGroup buckets src.rows by the plan's GROUP BY keys batch-at-a-
// time — key vectors hashed column-wise, one probe per row against
// pre-computed hashes — and streams the vectorizable aggregates into
// dense per-group accumulators. ok is false when any batch errors, in
// which case the caller runs the entire grouped path row-at-a-time
// (groups must be complete before aggregation, so there is no
// per-window fallback here). The returned row index maps dense group
// ids back to key rows; the morsel-parallel path merges per-worker
// tables through it.
func (x *executor) vecGroup(plan *selPlan, src *source) (groups []*group, vaggs []*vecAgg, gix *rowIndex, ok bool) {
	nKeys := len(plan.groupBy)
	vaggs = make([]*vecAgg, len(plan.vecAggs))
	for i, spec := range plan.vecAggs {
		va := &vecAgg{fc: spec.fc}
		if spec.node >= 0 {
			va.node = &plan.vecGB.nodes[spec.node]
		}
		vaggs[i] = va
	}
	// Per-group row lists are only needed when some aggregate still runs
	// through computeAggregate; fully-vectorized plans track first row
	// and count only.
	needRows := !plan.vecAggsAll
	vx := x.newVecExec(src.frame, src.rows)
	ix := x.newRowIndex(0)
	keyVecs := make([]*vec.Vec, nKeys)
	kvals := make(sqltypes.Row, nKeys)
	hash := make([]uint64, vec.BatchSize)
	gids := make([]int, vec.BatchSize)
	cur := vec.NewCursor(len(src.rows))
	for {
		lo, hi, windowOK := cur.Next()
		if !windowOK {
			break
		}
		vx.window(lo, hi)
		if nKeys == 0 {
			// Global aggregate: a single group holds every row.
			if len(groups) == 0 {
				groups = append(groups, &group{first: vx.win[0]})
			}
			g := groups[0]
			g.n += int64(vx.n)
			if needRows {
				g.rows = append(g.rows, vx.win...)
			}
			for i := 0; i < vx.n; i++ {
				gids[i] = 0
			}
		} else {
			for k := range plan.vecGB.nodes[:nKeys] {
				v, err := plan.vecGB.nodes[k].eval(vx, vx.selAll)
				if err != nil {
					x.eng.vecFallbacks.Add(1)
					return nil, nil, nil, false
				}
				keyVecs[k] = v
			}
			vec.HashInit(hash[:vx.n], vx.selAll)
			for k := range keyVecs {
				keyVecs[k].HashMix(hash[:vx.n], vx.selAll)
			}
			for i := 0; i < vx.n; i++ {
				for k := range keyVecs {
					kvals[k] = keyVecs[k].Get(i)
				}
				id, isNew := ix.bucketPre(hash[i], kvals)
				if isNew {
					groups = append(groups, &group{first: vx.win[i]})
				}
				g := groups[id]
				g.n++
				if needRows {
					g.rows = append(g.rows, vx.win[i])
				}
				gids[i] = id
			}
		}
		for _, va := range vaggs {
			if va.node == nil {
				// COUNT(*): every member row counts, no argument.
				for i := 0; i < vx.n; i++ {
					va.grow(gids[i])
					va.count[gids[i]]++
				}
				continue
			}
			v, err := va.node.eval(vx, vx.selAll)
			if err != nil {
				x.eng.vecFallbacks.Add(1)
				return nil, nil, nil, false
			}
			for i := 0; i < vx.n; i++ {
				va.grow(gids[i])
				if err := va.accumulate(gids[i], v.Get(i)); err != nil {
					x.eng.vecFallbacks.Add(1)
					return nil, nil, nil, false
				}
			}
		}
	}
	if nKeys == 0 && len(groups) == 0 {
		// Zero input rows still form one (empty) group, like groupRows.
		groups = append(groups, &group{})
	}
	return groups, vaggs, ix, true
}
