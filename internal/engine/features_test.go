package engine

import (
	"testing"
	"testing/quick"
)

func setupPeople(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE people (id BIGINT PRIMARY KEY, name TEXT, age BIGINT)`)
	mustExec(t, s, `INSERT INTO people VALUES
		(1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35),
		(4, 'dave', 25), (5, 'erin', NULL)`)
}

func TestLike(t *testing.T) {
	s := newTestSession(t)
	setupPeople(t, s)
	tests := []struct {
		where string
		want  int64
	}{
		{`name LIKE 'a%'`, 1},
		{`name LIKE '%o%'`, 2}, // bob, carol
		{`name LIKE '_ob'`, 1},
		{`name LIKE '%'`, 5},
		{`name NOT LIKE '%a%'`, 2}, // bob, erin
		{`name LIKE 'alice'`, 1},
		{`name LIKE 'ali'`, 0},
		{`name LIKE '%e'`, 1}, // alice... and dave! wait: dave ends in e too
	}
	for _, tt := range tests {
		res := mustExec(t, s, `SELECT COUNT(*) FROM people WHERE `+tt.where)
		got := res.Rows[0][0].Int()
		if tt.where == `name LIKE '%e'` {
			// alice, dave and erin's NULL... erin is a name too: alice,
			// dave; erin ends in n. Expect 2.
			if got != 2 {
				t.Errorf("%s = %d, want 2", tt.where, got)
			}
			continue
		}
		if got != tt.want {
			t.Errorf("%s = %d, want %d", tt.where, got, tt.want)
		}
	}
}

// Property: likeMatch with a pattern equal to the string (no wildcards)
// matches exactly, and '%'+s+'%' always matches s.
func TestQuickLikeProperties(t *testing.T) {
	f := func(a, b string) bool {
		// Avoid wildcard bytes inside the raw strings.
		clean := func(x string) string {
			out := []byte(x)
			for i := range out {
				if out[i] == '%' || out[i] == '_' {
					out[i] = 'a'
				}
			}
			return string(out)
		}
		ca, cb := clean(a), clean(b)
		if !likeMatch(ca, ca) {
			return false
		}
		if !likeMatch(ca+cb, ca+"%") {
			return false
		}
		if !likeMatch(ca+cb, "%"+cb) {
			return false
		}
		return likeMatch(ca+"xyz"+cb, ca+"%"+cb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetween(t *testing.T) {
	s := newTestSession(t)
	setupPeople(t, s)
	res := mustExec(t, s, `SELECT COUNT(*) FROM people WHERE age BETWEEN 25 AND 30`)
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("BETWEEN = %v, want 3", res.Rows[0][0])
	}
	res = mustExec(t, s, `SELECT COUNT(*) FROM people WHERE age NOT BETWEEN 25 AND 30`)
	if res.Rows[0][0].Int() != 1 { // carol; erin's NULL is unknown
		t.Errorf("NOT BETWEEN = %v, want 1", res.Rows[0][0])
	}
}

func TestExistsAndInSubquery(t *testing.T) {
	s := newTestSession(t)
	setupPeople(t, s)
	mustExec(t, s, `CREATE TABLE pets (owner BIGINT, species TEXT)`)
	mustExec(t, s, `INSERT INTO pets VALUES (1, 'cat'), (3, 'dog'), (3, 'cat')`)

	res := mustExec(t, s, `SELECT CASE WHEN EXISTS (SELECT owner FROM pets) THEN 1 ELSE 0 END`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("EXISTS = %v", res.Rows[0][0])
	}
	res = mustExec(t, s, `SELECT CASE WHEN EXISTS (SELECT owner FROM pets WHERE species = 'bird') THEN 1 ELSE 0 END`)
	if res.Rows[0][0].Int() != 0 {
		t.Fatalf("empty EXISTS = %v", res.Rows[0][0])
	}

	res = mustExec(t, s, `SELECT name FROM people WHERE id IN (SELECT owner FROM pets) ORDER BY id`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "alice" || res.Rows[1][0].Str() != "carol" {
		t.Fatalf("IN subquery rows = %v", res.Rows)
	}
	res = mustExec(t, s, `SELECT COUNT(*) FROM people WHERE id NOT IN (SELECT owner FROM pets)`)
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("NOT IN subquery = %v", res.Rows[0][0])
	}
	if _, err := s.Exec(`SELECT 1 IN (SELECT owner, species FROM pets)`); err == nil {
		t.Fatal("two-column IN subquery must error")
	}
}

func TestIntersectExcept(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE a (v BIGINT)`)
	mustExec(t, s, `CREATE TABLE b (v BIGINT)`)
	mustExec(t, s, `INSERT INTO a VALUES (1), (2), (2), (3)`)
	mustExec(t, s, `INSERT INTO b VALUES (2), (3), (4)`)

	res := mustExec(t, s, `SELECT v FROM a INTERSECT SELECT v FROM b ORDER BY 1`)
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 2 || res.Rows[1][0].Int() != 3 {
		t.Fatalf("INTERSECT = %v", res.Rows)
	}
	res = mustExec(t, s, `SELECT v FROM a EXCEPT SELECT v FROM b`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("EXCEPT = %v", res.Rows)
	}
	if _, err := s.Exec(`SELECT v FROM a INTERSECT ALL SELECT v FROM b`); err == nil {
		t.Fatal("INTERSECT ALL must be rejected")
	}
}

func TestCast(t *testing.T) {
	s := newTestSession(t)
	tests := []struct {
		sql  string
		want string
	}{
		{`SELECT CAST(3.9 AS BIGINT)`, "3"},
		{`SELECT CAST(3 AS DOUBLE)`, "3"},
		{`SELECT CAST('42' AS BIGINT)`, "42"},
		{`SELECT CAST(' 2.5 ' AS DOUBLE)`, "2.5"},
		{`SELECT CAST(7 AS TEXT)`, "7"},
		{`SELECT CAST(TRUE AS BIGINT)`, "1"},
		{`SELECT CAST(0 AS BOOLEAN)`, "false"},
		{`SELECT CAST(NULL AS BIGINT)`, "NULL"},
	}
	for _, tt := range tests {
		res := mustExec(t, s, tt.sql)
		if got := res.Rows[0][0].String(); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.sql, got, tt.want)
		}
	}
	if _, err := s.Exec(`SELECT CAST('nope' AS BIGINT)`); err == nil {
		t.Error("bad cast must error")
	}
}

func TestStringFunctions(t *testing.T) {
	s := newTestSession(t)
	tests := []struct {
		sql  string
		want string
	}{
		{`SELECT UPPER('abc')`, "ABC"},
		{`SELECT LOWER('AbC')`, "abc"},
		{`SELECT LENGTH('hello')`, "5"},
		{`SELECT CONCAT('a', 'b', 'c')`, "abc"},
		{`SELECT CONCAT('n=', 42)`, "n=42"},
		{`SELECT CONCAT('x', NULL, 'y')`, "xy"},
		{`SELECT SUBSTR('abcdef', 2, 3)`, "bcd"},
		{`SELECT SUBSTR('abcdef', 4)`, "def"},
		{`SELECT SUBSTR('abc', 9)`, ""},
		{`SELECT TRIM('  pad  ')`, "pad"},
		{`SELECT REPLACE('aXbXc', 'X', '-')`, "a-b-c"},
	}
	for _, tt := range tests {
		res := mustExec(t, s, tt.sql)
		if got := res.Rows[0][0].String(); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.sql, got, tt.want)
		}
	}
}

func TestLimitOffset(t *testing.T) {
	s := newTestSession(t)
	setupPeople(t, s)
	res := mustExec(t, s, `SELECT id FROM people ORDER BY id LIMIT 2 OFFSET 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 3 || res.Rows[1][0].Int() != 4 {
		t.Fatalf("LIMIT OFFSET = %v", res.Rows)
	}
	res = mustExec(t, s, `SELECT id FROM people ORDER BY id LIMIT 10 OFFSET 99`)
	if len(res.Rows) != 0 {
		t.Fatalf("past-end OFFSET = %v", res.Rows)
	}
}

func TestExistsLocksSubqueryTables(t *testing.T) {
	// The lock collector must see tables inside EXISTS/IN subqueries;
	// if it does, evaluation succeeds even for empty outer tables.
	s := newTestSession(t)
	setupPeople(t, s)
	mustExec(t, s, `CREATE TABLE empty_t (v BIGINT)`)
	res := mustExec(t, s, `SELECT COUNT(*) FROM people WHERE EXISTS (SELECT v FROM empty_t)`)
	if res.Rows[0][0].Int() != 0 {
		t.Fatalf("EXISTS over empty = %v", res.Rows[0][0])
	}
}
