package engine

import (
	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
	"sqloop/internal/vec"
)

// This file lowers expression trees a second time, into batch kernels
// over internal/vec column vectors. The vectorized path rides on top
// of the PR 4 compiled programs: nodes with a native kernel run
// per-column tight loops over a selection vector; everything else
// (subqueries, CASE, IN, aggregates, unresolvable references) gets a
// row-adapter node that loops the node's compiled row program over the
// batch, so a partially-vectorizable expression still executes
// batch-at-a-time.
//
// The equivalence contract is looser than the row compiler's, because
// the executor backstops it: a batch plan must produce exactly the
// interpreter's values whenever the interpreter would succeed on every
// row of the batch, and must return an error otherwise. On any error
// the executor re-runs that batch through the row path from the start
// of the window, which reproduces the row path's results, errors and
// error ordering bit-for-bit (windows are processed in row order).
// Kernels therefore never need to replicate error timing — only
// success values.

// vnode is one compiled batch expression node. eval writes only the
// positions listed in sel; callers must not read unselected positions.
type vnode struct {
	eval func(vx *vecExec, sel []int) (*vec.Vec, error)
}

// vplan is a set of co-compiled expressions sharing one slot space
// (their result vectors never clobber each other within a batch).
type vplan struct {
	nodes    []vnode
	nslots   int
	selSlots int
	// kernels counts natively-vectorized column reads in the plan: the
	// executor only takes the batch path when at least one exists
	// (an all-adapter or all-constant plan has nothing to amortize).
	kernels int
}

// useVec reports whether running this plan batch-at-a-time can beat
// the row path.
func (p *vplan) useVec() bool { return p != nil && p.kernels > 0 }

// vcomp is the compilation context: a slot allocator over one frame.
type vcomp struct {
	f        *frame
	nslots   int
	selSlots int
	kernels  int
}

func (c *vcomp) slot() int {
	s := c.nslots
	c.nslots++
	return s
}

func (c *vcomp) selSlot() int {
	s := c.selSlots
	c.selSlots++
	return s
}

// compileVecPlan lowers exprs against f into one shared-slot batch
// plan. Like compileExpr it never fails; unsupported nodes become
// row adapters.
func compileVecPlan(exprs []sqlparser.Expr, f *frame) *vplan {
	c := &vcomp{f: f}
	p := &vplan{nodes: make([]vnode, 0, len(exprs))}
	for _, e := range exprs {
		p.nodes = append(p.nodes, c.compile(e))
	}
	p.nslots, p.selSlots, p.kernels = c.nslots, c.selSlots, c.kernels
	return p
}

// adapter wraps a node's compiled row program in a batch loop: the
// fallback that keeps arbitrary expressions flowing through the batch
// path. The program is compiled once per plan (plans are cached on the
// statement), not per execution.
func (c *vcomp) adapter(e sqlparser.Expr) vnode {
	rp := compileExpr(e, c.f)
	slot := c.slot()
	return vnode{eval: func(vx *vecExec, sel []int) (*vec.Vec, error) {
		out := vx.slot(slot)
		out.ResetAny(vx.n)
		env := vx.env
		for _, i := range sel {
			env.row = vx.win[i]
			v, err := rp(env)
			if err != nil {
				return nil, err
			}
			out.SetAny(i, v)
		}
		return out, nil
	}}
}

func (c *vcomp) compile(e sqlparser.Expr) vnode {
	switch t := e.(type) {
	case *sqlparser.Literal:
		val := t.Val
		slot := c.slot()
		return vnode{eval: func(vx *vecExec, sel []int) (*vec.Vec, error) {
			out := vx.slot(slot)
			out.SetConst(val, vx.n)
			return out, nil
		}}

	case *sqlparser.Param:
		idx := t.Index
		slot := c.slot()
		return vnode{eval: func(vx *vecExec, sel []int) (*vec.Vec, error) {
			if vx.x == nil || idx >= len(vx.x.args) {
				// Missing bind parameter: let the row path raise its
				// per-row error.
				return nil, errVecFallback
			}
			out := vx.slot(slot)
			out.SetConst(vx.x.args[idx], vx.n)
			return out, nil
		}}

	case *sqlparser.ColumnRef:
		if c.f == nil {
			return c.adapter(e)
		}
		off, err := c.f.resolve(t.Table, t.Name)
		if err != nil {
			// Static resolution failure: the adapter's interpreter
			// program re-raises the error per batch, and the executor's
			// fallback re-raises it per row.
			return c.adapter(e)
		}
		c.kernels++
		return vnode{eval: func(vx *vecExec, sel []int) (*vec.Vec, error) {
			return vx.col(off), nil
		}}

	case *sqlparser.ComparisonExpr:
		l, r := c.compile(t.Left), c.compile(t.Right)
		op := t.Op
		slot := c.slot()
		return vnode{eval: func(vx *vecExec, sel []int) (*vec.Vec, error) {
			lv, err := l.eval(vx, sel)
			if err != nil {
				return nil, err
			}
			rv, err := r.eval(vx, sel)
			if err != nil {
				return nil, err
			}
			out := vx.slot(slot)
			if err := vec.Compare(op, lv, rv, out, sel); err != nil {
				return nil, err
			}
			return out, nil
		}}

	case *sqlparser.BinaryExpr:
		l, r := c.compile(t.Left), c.compile(t.Right)
		op := t.Op
		slot := c.slot()
		return vnode{eval: func(vx *vecExec, sel []int) (*vec.Vec, error) {
			lv, err := l.eval(vx, sel)
			if err != nil {
				return nil, err
			}
			rv, err := r.eval(vx, sel)
			if err != nil {
				return nil, err
			}
			out := vx.slot(slot)
			if err := vec.Arith(op, lv, rv, out, sel); err != nil {
				return nil, err
			}
			return out, nil
		}}

	case *sqlparser.LogicalExpr:
		return c.compileLogical(t)

	case *sqlparser.NotExpr:
		in := c.compile(t.Inner)
		slot := c.slot()
		return vnode{eval: func(vx *vecExec, sel []int) (*vec.Vec, error) {
			iv, err := in.eval(vx, sel)
			if err != nil {
				return nil, err
			}
			out := vx.slot(slot)
			out.ResetBools(vx.n)
			for _, i := range sel {
				switch iv.Truth(i) {
				case -1:
					out.SetNull(i)
				case 1:
					out.SetBool(i, false)
				default:
					out.SetBool(i, true)
				}
			}
			return out, nil
		}}

	case *sqlparser.IsNullExpr:
		in := c.compile(t.Inner)
		not := t.Not
		slot := c.slot()
		return vnode{eval: func(vx *vecExec, sel []int) (*vec.Vec, error) {
			iv, err := in.eval(vx, sel)
			if err != nil {
				return nil, err
			}
			out := vx.slot(slot)
			out.ResetBools(vx.n)
			for _, i := range sel {
				out.SetBool(i, iv.IsNullAt(i) != not)
			}
			return out, nil
		}}

	case *sqlparser.FuncCall:
		if isAggregate(t.Name) {
			// Aggregates only evaluate in grouped projection, which the
			// executor runs row-at-a-time (one row per group); the
			// adapter keeps the "outside grouped query" error exact.
			return c.adapter(e)
		}
		args := make([]vnode, len(t.Args))
		for i, a := range t.Args {
			args[i] = c.compile(a)
		}
		name := t.Name
		slot := c.slot()
		return vnode{eval: func(vx *vecExec, sel []int) (*vec.Vec, error) {
			avs := make([]*vec.Vec, len(args))
			for k, a := range args {
				av, err := a.eval(vx, sel)
				if err != nil {
					return nil, err
				}
				avs[k] = av
			}
			out := vx.slot(slot)
			out.ResetAny(vx.n)
			buf := make([]sqltypes.Value, len(avs))
			for _, i := range sel {
				for k, av := range avs {
					buf[k] = av.Get(i)
				}
				v, err := callScalarFunc(name, buf)
				if err != nil {
					return nil, err
				}
				out.SetAny(i, v)
			}
			return out, nil
		}}

	case *sqlparser.CastExpr:
		in := c.compile(t.Inner)
		typ := t.Type
		slot := c.slot()
		return vnode{eval: func(vx *vecExec, sel []int) (*vec.Vec, error) {
			iv, err := in.eval(vx, sel)
			if err != nil {
				return nil, err
			}
			out := vx.slot(slot)
			out.ResetAny(vx.n)
			for _, i := range sel {
				v, err := castValue(iv.Get(i), typ)
				if err != nil {
					return nil, err
				}
				out.SetAny(i, v)
			}
			return out, nil
		}}

	case *sqlparser.LikeExpr:
		return c.compileLike(t)

	default:
		// CASE, IN, subqueries, EXISTS and unknown nodes run through
		// their row programs batch-at-a-time.
		return c.adapter(e)
	}
}

// compileLogical is the batch form of three-valued AND/OR with
// selection narrowing: the right side is evaluated only on the rows
// the left side did not decide, which reproduces the row path's
// short-circuiting — including its suppression of right-side errors on
// decided rows — without any per-row branching in the common case.
func (c *vcomp) compileLogical(t *sqlparser.LogicalExpr) vnode {
	l, r := c.compile(t.Left), c.compile(t.Right)
	and := t.Op == sqlparser.LogicAnd
	slot := c.slot()
	selSlot := c.selSlot()
	return vnode{eval: func(vx *vecExec, sel []int) (*vec.Vec, error) {
		lv, err := l.eval(vx, sel)
		if err != nil {
			return nil, err
		}
		out := vx.slot(slot)
		out.ResetBools(vx.n)
		sel2 := vx.selSlot(selSlot)[:0]
		for _, i := range sel {
			lt := lv.Truth(i)
			if and && lt == 0 {
				out.SetBool(i, false) // FALSE AND _ = FALSE
				continue
			}
			if !and && lt == 1 {
				out.SetBool(i, true) // TRUE OR _ = TRUE
				continue
			}
			sel2 = append(sel2, i)
		}
		vx.setSelSlot(selSlot, sel2)
		if len(sel2) == 0 {
			return out, nil
		}
		rv, err := r.eval(vx, sel2)
		if err != nil {
			return nil, err
		}
		for _, i := range sel2 {
			lt, rt := lv.Truth(i), rv.Truth(i)
			if and {
				switch {
				case rt == 0:
					out.SetBool(i, false)
				case lt == -1 || rt == -1:
					out.SetNull(i)
				default:
					out.SetBool(i, true)
				}
			} else {
				switch {
				case rt == 1:
					out.SetBool(i, true)
				case lt == -1 || rt == -1:
					out.SetNull(i)
				default:
					out.SetBool(i, false)
				}
			}
		}
		return out, nil
	}}
}

// compileLike vectorizes LIKE. Constant string patterns reuse the row
// compiler's segment matcher in a tight loop; everything else takes a
// generic two-column loop over likeMatch.
func (c *vcomp) compileLike(t *sqlparser.LikeExpr) vnode {
	left := c.compile(t.Left)
	not := t.Not
	if lit, ok := t.Pattern.(*sqlparser.Literal); ok {
		switch {
		case lit.Val.IsNull():
			// NULL pattern: the result is NULL whenever the left side
			// evaluates (errors still surface via fallback).
			slot := c.slot()
			return vnode{eval: func(vx *vecExec, sel []int) (*vec.Vec, error) {
				if _, err := left.eval(vx, sel); err != nil {
					return nil, err
				}
				out := vx.slot(slot)
				out.SetConst(sqltypes.Null, vx.n)
				return out, nil
			}}
		case lit.Val.Kind() == sqltypes.KindString:
			m := compileLikePattern(lit.Val.Str())
			slot := c.slot()
			return vnode{eval: func(vx *vecExec, sel []int) (*vec.Vec, error) {
				lv, err := left.eval(vx, sel)
				if err != nil {
					return nil, err
				}
				out := vx.slot(slot)
				out.ResetBools(vx.n)
				for _, i := range sel {
					v := lv.Get(i)
					if v.IsNull() {
						out.SetNull(i)
						continue
					}
					if v.Kind() != sqltypes.KindString {
						return nil, errVecFallback
					}
					out.SetBool(i, m.match(v.Str()) != not)
				}
				return out, nil
			}}
		}
	}
	pat := c.compile(t.Pattern)
	slot := c.slot()
	return vnode{eval: func(vx *vecExec, sel []int) (*vec.Vec, error) {
		lv, err := left.eval(vx, sel)
		if err != nil {
			return nil, err
		}
		pv, err := pat.eval(vx, sel)
		if err != nil {
			return nil, err
		}
		out := vx.slot(slot)
		out.ResetBools(vx.n)
		for _, i := range sel {
			l, p := lv.Get(i), pv.Get(i)
			if l.IsNull() || p.IsNull() {
				out.SetNull(i)
				continue
			}
			if l.Kind() != sqltypes.KindString || p.Kind() != sqltypes.KindString {
				return nil, errVecFallback
			}
			out.SetBool(i, likeMatch(l.Str(), p.Str()) != not)
		}
		return out, nil
	}}
}
