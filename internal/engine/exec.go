package engine

import (
	"fmt"
	"strings"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
	"sqloop/internal/storage"
)

func (x *executor) runCreateTable(s *sqlparser.CreateTableStmt) (*Result, error) {
	lc := strings.ToLower(s.Name)

	if s.AsSelect != nil {
		// Evaluate the query first (it takes its own read locks via the
		// caller's collect; here we collect explicitly).
		reads, err := x.collectTables(&sqlparser.SelectStmt{Body: s.AsSelect})
		if err != nil {
			return nil, err
		}
		unlock := x.eng.lockTables(reads, nil)
		rel, err := x.evalBody(s.AsSelect)
		unlock()
		if err != nil {
			return nil, err
		}
		schema, err := inferSchema(rel)
		if err != nil {
			return nil, err
		}
		t, err := x.createTableObject(lc, s, schema, -1)
		if err != nil || t == nil {
			return &Result{}, err
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		for _, r := range rel.rows {
			key := sqltypes.NewInt(x.eng.rowid.Add(1)).MapKey()
			if err := t.store.Insert(key, r.Clone()); err != nil {
				return nil, err
			}
		}
		t.commitStore()
		x.work.written += int64(len(rel.rows))
		x.eng.stats.RowsInserted.Add(int64(len(rel.rows)))
		return &Result{RowsAffected: int64(len(rel.rows))}, nil
	}

	if len(s.Columns) == 0 {
		return nil, fmt.Errorf("engine: CREATE TABLE %s has no columns", s.Name)
	}
	cols := make([]sqltypes.Column, len(s.Columns))
	pk := -1
	for i, c := range s.Columns {
		cols[i] = sqltypes.Column{Name: c.Name, Type: c.Type}
		if c.PrimaryKey {
			if pk >= 0 {
				return nil, fmt.Errorf("engine: table %s declares multiple primary keys", s.Name)
			}
			pk = i
		}
	}
	schema, err := sqltypes.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	if _, err := x.createTableObject(lc, s, schema, pk); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// createTableObject registers the table in the catalog. It returns nil
// (no error) when IF NOT EXISTS suppressed creation.
func (x *executor) createTableObject(lc string, s *sqlparser.CreateTableStmt, schema *sqltypes.Schema, pk int) (*Table, error) {
	x.eng.mu.Lock()
	defer x.eng.mu.Unlock()
	if _, exists := x.eng.tables[lc]; exists {
		if s.IfNotExists {
			return nil, nil
		}
		return nil, fmt.Errorf("engine: table %q already exists", s.Name)
	}
	if _, exists := x.eng.views[lc]; exists {
		return nil, fmt.Errorf("engine: view %q already exists", s.Name)
	}
	store, err := x.eng.newStore(lc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		name:    lc,
		schema:  schema,
		pkCol:   pk,
		store:   store,
		indexes: make(map[string]*hashIndex),
	}
	x.eng.tables[lc] = t
	if err := x.eng.saveDiskCatalog(); err != nil {
		delete(x.eng.tables, lc)
		if d, ok := store.(storage.Dropper); ok {
			_ = d.Drop()
		}
		return nil, fmt.Errorf("engine: persisting catalog for %q: %w", s.Name, err)
	}
	x.eng.noteDDL(lc)
	return t, nil
}

// inferSchema derives a schema from a materialized relation, unifying
// the value kinds seen in each column.
func inferSchema(rel *relation) (*sqltypes.Schema, error) {
	cols := make([]sqltypes.Column, len(rel.cols))
	for i, name := range rel.cols {
		cols[i] = sqltypes.Column{Name: name, Type: sqltypes.TypeAny}
	}
	for _, r := range rel.rows {
		for i, v := range r {
			cols[i].Type = sqltypes.UnifyColumnTypes(cols[i].Type, sqltypes.KindToColumnType(v.Kind()))
		}
	}
	return sqltypes.NewSchema(cols...)
}

func (x *executor) runCreateIndex(s *sqlparser.CreateIndexStmt) (*Result, error) {
	if len(s.Columns) != 1 {
		return nil, fmt.Errorf("engine: only single-column indexes are supported (got %d columns)", len(s.Columns))
	}
	tbl, ok := x.eng.lookupTable(s.Table)
	if !ok {
		return nil, &ErrTableNotFound{Name: s.Table}
	}
	col := tbl.schema.ColumnIndex(s.Columns[0])
	if col < 0 {
		return nil, &ErrColumnNotFound{Name: s.Columns[0]}
	}
	lc := strings.ToLower(s.Name)
	tbl.mu.Lock()
	defer tbl.mu.Unlock()
	if _, exists := tbl.indexes[lc]; exists {
		if s.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("engine: index %q already exists", s.Name)
	}
	ix := newHashIndex(lc, col)
	tbl.store.Scan(func(pk sqltypes.Key, row sqltypes.Row) bool {
		ix.add(pk, row)
		return true
	})
	x.work.scanned += int64(tbl.store.Len())
	// The table name is bumped too: an index changes how statements over
	// the table would plan, so their cached entries must revalidate.
	tbl.indexes[lc] = ix
	x.eng.noteDDL(lc, s.Table)
	return &Result{}, nil
}

func (x *executor) runCreateView(s *sqlparser.CreateViewStmt) (*Result, error) {
	lc := strings.ToLower(s.Name)
	x.eng.mu.Lock()
	defer x.eng.mu.Unlock()
	if _, exists := x.eng.tables[lc]; exists {
		return nil, fmt.Errorf("engine: table %q already exists", s.Name)
	}
	if _, exists := x.eng.views[lc]; exists && !s.OrReplace {
		return nil, fmt.Errorf("engine: view %q already exists", s.Name)
	}
	x.eng.views[lc] = &view{name: lc, body: s.Body}
	x.eng.noteDDL(lc)
	return &Result{}, nil
}

func (x *executor) runDrop(s *sqlparser.DropStmt) (*Result, error) {
	lc := strings.ToLower(s.Name)
	x.eng.mu.Lock()
	defer x.eng.mu.Unlock()
	switch s.Kind {
	case sqlparser.DropTable:
		t, ok := x.eng.tables[lc]
		if !ok {
			if s.IfExists {
				return &Result{}, nil
			}
			return nil, &ErrTableNotFound{Name: s.Name}
		}
		delete(x.eng.tables, lc)
		x.eng.noteDDL(lc)
		if err := x.eng.saveDiskCatalog(); err != nil {
			return nil, fmt.Errorf("engine: persisting catalog after dropping %q: %w", s.Name, err)
		}
		if d, ok := t.store.(storage.Dropper); ok {
			t.mu.Lock()
			err := d.Drop()
			t.mu.Unlock()
			if err != nil {
				return nil, fmt.Errorf("engine: dropping storage of %q: %w", s.Name, err)
			}
		}
	case sqlparser.DropView:
		if _, ok := x.eng.views[lc]; !ok {
			if s.IfExists {
				return &Result{}, nil
			}
			return nil, &ErrTableNotFound{Name: s.Name}
		}
		delete(x.eng.views, lc)
		x.eng.noteDDL(lc)
	case sqlparser.DropIndex:
		for _, t := range x.eng.tables {
			t.mu.Lock()
			if _, ok := t.indexes[lc]; ok {
				delete(t.indexes, lc)
				t.mu.Unlock()
				x.eng.noteDDL(lc, t.name)
				return &Result{}, nil
			}
			t.mu.Unlock()
		}
		if !s.IfExists {
			return nil, fmt.Errorf("engine: index %q does not exist", s.Name)
		}
	}
	return &Result{}, nil
}

func (x *executor) runTruncate(s *sqlparser.TruncateStmt) (*Result, error) {
	tbl, ok := x.eng.lookupTable(s.Table)
	if !ok {
		return nil, &ErrTableNotFound{Name: s.Table}
	}
	tbl.mu.Lock()
	defer tbl.mu.Unlock()
	n := int64(tbl.store.Len())
	tbl.store.Clear()
	for _, ix := range tbl.indexes {
		ix.buckets = make(map[sqltypes.Key]map[sqltypes.Key]struct{})
	}
	x.work.written += n
	x.eng.stats.RowsDeleted.Add(n)
	return &Result{RowsAffected: n}, nil
}

func (x *executor) runInsert(s *sqlparser.InsertStmt) (*Result, error) {
	tbl, ok := x.eng.lookupTable(s.Table)
	if !ok {
		return nil, &ErrTableNotFound{Name: s.Table}
	}
	reads, err := x.collectTables(s)
	if err != nil {
		return nil, err
	}
	unlock := x.eng.lockTables(reads, []*Table{tbl})
	defer unlock()

	rel, err := x.evalBody(s.Source)
	if err != nil {
		return nil, err
	}

	// Map source columns onto table columns.
	targetIdx := make([]int, 0, tbl.schema.Len())
	if len(s.Columns) > 0 {
		if len(s.Columns) != len(rel.cols) {
			return nil, fmt.Errorf("engine: INSERT lists %d columns, query returns %d",
				len(s.Columns), len(rel.cols))
		}
		for _, c := range s.Columns {
			i := tbl.schema.ColumnIndex(c)
			if i < 0 {
				return nil, &ErrColumnNotFound{Name: c}
			}
			targetIdx = append(targetIdx, i)
		}
	} else {
		if len(rel.cols) != tbl.schema.Len() {
			return nil, fmt.Errorf("engine: INSERT into %s expects %d columns, query returns %d",
				s.Table, tbl.schema.Len(), len(rel.cols))
		}
		for i := 0; i < tbl.schema.Len(); i++ {
			targetIdx = append(targetIdx, i)
		}
	}

	inserted := int64(0)
	for _, src := range rel.rows {
		row := make(sqltypes.Row, tbl.schema.Len())
		for i := range row {
			row[i] = sqltypes.Null
		}
		for j, ti := range targetIdx {
			v, err := tbl.schema.Columns[ti].Type.Coerce(src[j])
			if err != nil {
				return nil, fmt.Errorf("column %s: %w", tbl.schema.Columns[ti].Name, err)
			}
			row[ti] = v
		}
		key, err := tbl.keyFor(row, &x.eng.rowid)
		if err != nil {
			return nil, err
		}
		if err := tbl.store.Insert(key, row); err != nil {
			if err == storage.ErrDuplicateKey {
				return nil, fmt.Errorf("engine: duplicate primary key %v in table %s",
					row[tbl.pkCol], s.Table)
			}
			return nil, err
		}
		tbl.addToIndexes(key, row)
		x.sess.record(undoRec{kind: undoInsert, table: tbl, key: key})
		inserted++
	}
	x.work.written += inserted
	x.eng.stats.RowsInserted.Add(inserted)
	return &Result{RowsAffected: inserted}, nil
}

// keyFor derives the storage key for a row: its primary-key column when
// declared, a synthetic rowid otherwise.
func (t *Table) keyFor(row sqltypes.Row, rowid interface{ Add(int64) int64 }) (sqltypes.Key, error) {
	if t.pkCol >= 0 {
		v := row[t.pkCol]
		if v.IsNull() {
			return sqltypes.Key{}, fmt.Errorf("engine: NULL primary key in table %s", t.name)
		}
		return v.MapKey(), nil
	}
	return sqltypes.NewInt(rowid.Add(1)).MapKey(), nil
}

func (x *executor) runUpdate(s *sqlparser.UpdateStmt) (*Result, error) {
	tbl, ok := x.eng.lookupTable(s.Table)
	if !ok {
		return nil, &ErrTableNotFound{Name: s.Table}
	}
	reads, err := x.collectTables(s)
	if err != nil {
		return nil, err
	}
	unlock := x.eng.lockTables(reads, []*Table{tbl})
	defer unlock()

	alias := s.Alias
	if alias == "" {
		alias = s.Table
	}
	targetFrame := &frame{}
	targetFrame.addRel(alias, tbl.schema.Names())

	// Resolve SET target columns up front.
	setCols := make([]int, len(s.Sets))
	for i, a := range s.Sets {
		ci := tbl.schema.ColumnIndex(a.Column)
		if ci < 0 {
			return nil, &ErrColumnNotFound{Name: a.Column}
		}
		setCols[i] = ci
	}

	// Materialize the FROM product once, if present.
	var from *source
	if len(s.From) > 0 {
		from, err = x.evalFromList(s.From, nil)
		if err != nil {
			return nil, err
		}
	}

	type change struct {
		key sqltypes.Key
		old sqltypes.Row
		new sqltypes.Row
	}
	var changes []change

	if from == nil {
		env := &evalEnv{frame: targetFrame, x: x}
		var whereProg program
		if s.Where != nil {
			whereProg = x.prog(s.Where, targetFrame)
		}
		setProgs := x.setProgs(s.Sets, targetFrame)
		tbl.store.Scan(func(key sqltypes.Key, row sqltypes.Row) bool {
			env.row = row
			if whereProg != nil {
				v, e := whereProg(env)
				if e != nil {
					err = e
					return false
				}
				if !v.IsTrue() {
					return true
				}
			}
			newRow, changed, e := applySets(tbl, s.Sets, setCols, setProgs, env, row)
			if e != nil {
				err = e
				return false
			}
			if changed {
				changes = append(changes, change{key: key, old: row, new: newRow})
			}
			return true
		})
		x.work.scanned += int64(tbl.store.Len())
		x.eng.stats.RowsScanned.Add(int64(tbl.store.Len()))
		if err != nil {
			return nil, err
		}
	} else {
		combinedFrame := concatFrames(targetFrame, from.frame)
		// Hash-join the target with the FROM product on any equi
		// conjuncts in WHERE; fall back to nested loop.
		tKeys, fKeys, residual := splitEquiConjuncts(s.Where, targetFrame, from.frame)
		env := &evalEnv{frame: combinedFrame, x: x}

		var build *rowIndex
		var buildRows [][]sqltypes.Row
		if len(tKeys) > 0 {
			build = x.newRowIndex(len(from.rows))
			fenv := &evalEnv{frame: from.frame, x: x}
			fProgs := make([]program, len(fKeys))
			for i, ke := range fKeys {
				fProgs[i] = x.prog(ke, from.frame)
			}
			kv := make(sqltypes.Row, len(fKeys))
			for _, fr := range from.rows {
				fenv.row = fr
				null := false
				for i, p := range fProgs {
					v, e := p(fenv)
					if e != nil {
						return nil, e
					}
					if v.IsNull() {
						null = true
						break
					}
					kv[i] = v
				}
				if null {
					continue
				}
				id, isNew := build.bucket(kv, false)
				if isNew {
					buildRows = append(buildRows, nil)
				}
				buildRows[id] = append(buildRows[id], fr)
			}
		}

		// Predicate: residual conjuncts when hash-joining, the full WHERE
		// otherwise (nested loop).
		var predProg program
		if build != nil {
			predProg = x.residualProg(residual, combinedFrame)
		} else if s.Where != nil {
			predProg = x.prog(s.Where, combinedFrame)
		}
		tProgs := make([]program, len(tKeys))
		for i, ke := range tKeys {
			tProgs[i] = x.prog(ke, targetFrame)
		}
		setProgs := x.setProgs(s.Sets, combinedFrame)

		tenv := &evalEnv{frame: targetFrame, x: x}
		combined := make(sqltypes.Row, combinedFrame.width)
		kv := make(sqltypes.Row, len(tKeys))
		tbl.store.Scan(func(key sqltypes.Key, row sqltypes.Row) bool {
			candidates := from.rows
			if build != nil {
				tenv.row = row
				null := false
				for i, p := range tProgs {
					v, e := p(tenv)
					if e != nil {
						err = e
						return false
					}
					if v.IsNull() {
						null = true
						break
					}
					kv[i] = v
				}
				if null {
					return true
				}
				if id := build.lookup(kv); id >= 0 {
					candidates = buildRows[id]
				} else {
					candidates = nil
				}
			}
			for _, fr := range candidates {
				copy(combined, row)
				copy(combined[len(row):], fr)
				env.row = combined
				x.work.joined++
				if predProg != nil {
					v, e := predProg(env)
					if e != nil {
						err = e
						return false
					}
					if !v.IsTrue() {
						continue
					}
				}
				newRow, changed, e := applySets(tbl, s.Sets, setCols, setProgs, env, row)
				if e != nil {
					err = e
					return false
				}
				if changed {
					changes = append(changes, change{key: key, old: row, new: newRow})
				}
				break // first matching FROM row wins (PostgreSQL-style)
			}
			return true
		})
		x.work.scanned += int64(tbl.store.Len())
		x.eng.stats.RowsScanned.Add(int64(tbl.store.Len()))
		if err != nil {
			return nil, err
		}
	}

	for _, c := range changes {
		tbl.removeFromIndexes(c.key, c.old)
		tbl.store.Update(c.key, c.new)
		tbl.addToIndexes(c.key, c.new)
		x.sess.record(undoRec{kind: undoUpdate, table: tbl, key: c.key, old: c.old})
	}
	n := int64(len(changes))
	x.work.written += n
	x.eng.stats.RowsUpdated.Add(n)
	return &Result{RowsAffected: n}, nil
}

// setProgs lowers the SET assignment expressions against the frame the
// rows will be evaluated in (target-only or target+FROM combined).
func (x *executor) setProgs(sets []sqlparser.Assignment, f *frame) []program {
	progs := make([]program, len(sets))
	for i, a := range sets {
		progs[i] = x.prog(a.Value, f)
	}
	return progs
}

// applySets computes the updated row; changed reports whether any value
// differs from the original (MySQL-style changed-rows counting, which
// SQLoop's UNTIL n UPDATES termination relies on).
func applySets(tbl *Table, sets []sqlparser.Assignment, setCols []int, setProgs []program, env *evalEnv, row sqltypes.Row) (sqltypes.Row, bool, error) {
	newRow := row.Clone()
	changed := false
	for i, a := range sets {
		v, err := setProgs[i](env)
		if err != nil {
			return nil, false, err
		}
		ci := setCols[i]
		v, err = tbl.schema.Columns[ci].Type.Coerce(v)
		if err != nil {
			return nil, false, fmt.Errorf("column %s: %w", a.Column, err)
		}
		if !valuesEqual(newRow[ci], v) {
			changed = true
		}
		newRow[ci] = v
	}
	if tbl.pkCol >= 0 && !valuesEqual(newRow[tbl.pkCol], row[tbl.pkCol]) {
		return nil, false, fmt.Errorf("engine: updating primary key column %s is not supported",
			tbl.schema.Columns[tbl.pkCol].Name)
	}
	return newRow, changed, nil
}

// valuesEqual compares values treating NULLs as equal (for change
// detection, not predicate evaluation).
func valuesEqual(a, b sqltypes.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	c, err := sqltypes.Compare(a, b)
	return err == nil && c == 0
}

func (x *executor) runDelete(s *sqlparser.DeleteStmt) (*Result, error) {
	tbl, ok := x.eng.lookupTable(s.Table)
	if !ok {
		return nil, &ErrTableNotFound{Name: s.Table}
	}
	reads, err := x.collectTables(s)
	if err != nil {
		return nil, err
	}
	unlock := x.eng.lockTables(reads, []*Table{tbl})
	defer unlock()

	targetFrame := &frame{}
	targetFrame.addRel(s.Table, tbl.schema.Names())
	env := &evalEnv{frame: targetFrame, x: x}

	type victim struct {
		key sqltypes.Key
		row sqltypes.Row
	}
	var whereProg program
	if s.Where != nil {
		whereProg = x.prog(s.Where, targetFrame)
	}
	var victims []victim
	tbl.store.Scan(func(key sqltypes.Key, row sqltypes.Row) bool {
		if whereProg != nil {
			env.row = row
			v, e := whereProg(env)
			if e != nil {
				err = e
				return false
			}
			if !v.IsTrue() {
				return true
			}
		}
		victims = append(victims, victim{key: key, row: row})
		return true
	})
	x.work.scanned += int64(tbl.store.Len())
	x.eng.stats.RowsScanned.Add(int64(tbl.store.Len()))
	if err != nil {
		return nil, err
	}
	for _, v := range victims {
		tbl.removeFromIndexes(v.key, v.row)
		tbl.store.Delete(v.key)
		x.sess.record(undoRec{kind: undoDelete, table: tbl, key: v.key, old: v.row})
	}
	n := int64(len(victims))
	x.work.written += n
	x.eng.stats.RowsDeleted.Add(n)
	return &Result{RowsAffected: n}, nil
}
