package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
)

// relation is a fully materialized intermediate result.
type relation struct {
	name string
	cols []string
	rows []sqltypes.Row
}

// executor runs one statement. It carries bind args, the plain-CTE
// scope, and per-statement work counters for the cost model.
type executor struct {
	sess *Session
	eng  *Engine
	args []sqltypes.Value
	ctes map[string]*relation
	work workCounters
	// inCache memoizes uncorrelated IN-subquery results per statement.
	inCache map[*sqlparser.InExpr][]sqltypes.Value
	// progs, when non-nil, is the compiled-program cache shared by every
	// execution of this (cached or prepared) statement.
	progs *progCache
}

// chargeCost accrues the simulated latency of the statement's work to
// the session and sleeps whenever a full quantum is owed.
func (x *executor) chargeCost() {
	if x.eng.cfg.Cost == nil {
		return
	}
	x.sess.costDebt += x.eng.cfg.Cost.charge(x.work)
	if x.sess.costDebt >= costQuantum {
		d := x.sess.costDebt
		x.sess.costDebt = 0
		sleep(d)
	}
}

// run dispatches a statement. DML/DDL live in exec.go.
func (x *executor) run(st sqlparser.Statement) (*Result, error) {
	switch s := st.(type) {
	case *sqlparser.SelectStmt:
		return x.runSelect(s)
	case *sqlparser.LoopCTEStmt:
		return nil, fmt.Errorf("engine: %s CTEs must be executed through SQLoop, not sent to an engine",
			map[sqlparser.CTEKind]string{
				sqlparser.CTERecursive: "RECURSIVE",
				sqlparser.CTEIterative: "ITERATIVE",
			}[s.Kind])
	case *sqlparser.CreateTableStmt:
		return x.runCreateTable(s)
	case *sqlparser.CreateIndexStmt:
		return x.runCreateIndex(s)
	case *sqlparser.CreateViewStmt:
		return x.runCreateView(s)
	case *sqlparser.DropStmt:
		return x.runDrop(s)
	case *sqlparser.InsertStmt:
		return x.runInsert(s)
	case *sqlparser.UpdateStmt:
		return x.runUpdate(s)
	case *sqlparser.DeleteStmt:
		return x.runDelete(s)
	case *sqlparser.TruncateStmt:
		return x.runTruncate(s)
	case *sqlparser.TxStmt:
		switch s.Kind {
		case sqlparser.TxBegin:
			x.sess.begin()
		case sqlparser.TxCommit:
			x.sess.commit()
		case sqlparser.TxRollback:
			x.sess.rollback()
		}
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", st)
	}
}

func (x *executor) runSelect(s *sqlparser.SelectStmt) (*Result, error) {
	// Lock every referenced base table for reading for the duration.
	reads, err := x.collectTables(s)
	if err != nil {
		return nil, err
	}
	unlock := x.eng.lockTables(reads, nil)
	defer unlock()

	if err := x.bindCTEs(s.With); err != nil {
		return nil, err
	}
	rel, err := x.evalBody(s.Body)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: rel.cols, Rows: rel.rows}, nil
}

// bindCTEs evaluates plain WITH entries into the executor's scope.
func (x *executor) bindCTEs(ctes []sqlparser.PlainCTE) error {
	for _, cte := range ctes {
		rel, err := x.evalBody(cte.Body)
		if err != nil {
			return fmt.Errorf("CTE %s: %w", cte.Name, err)
		}
		if len(cte.Columns) > 0 {
			if len(cte.Columns) != len(rel.cols) {
				return fmt.Errorf("engine: CTE %s declares %d columns, query returns %d",
					cte.Name, len(cte.Columns), len(rel.cols))
			}
			rel.cols = append([]string(nil), cte.Columns...)
		}
		rel.name = cte.Name
		if x.ctes == nil {
			x.ctes = make(map[string]*relation)
		}
		x.ctes[strings.ToLower(cte.Name)] = rel
	}
	return nil
}

// evalBody evaluates any select body to a relation.
func (x *executor) evalBody(b sqlparser.SelectBody) (*relation, error) {
	switch s := b.(type) {
	case *sqlparser.Select:
		return x.evalSelect(s)
	case *sqlparser.Values:
		return x.evalValues(s)
	case *sqlparser.SetOp:
		return x.evalSetOp(s)
	default:
		return nil, fmt.Errorf("engine: unsupported select body %T", b)
	}
}

func (x *executor) evalValues(v *sqlparser.Values) (*relation, error) {
	rel := &relation{}
	env := &evalEnv{x: x}
	for i, rowExprs := range v.Rows {
		if i == 0 {
			for j := range rowExprs {
				rel.cols = append(rel.cols, "column"+strconv.Itoa(j+1))
			}
		} else if len(rowExprs) != len(rel.cols) {
			return nil, fmt.Errorf("engine: VALUES rows have differing arity")
		}
		row := make(sqltypes.Row, len(rowExprs))
		for j, e := range rowExprs {
			val, err := env.evalExpr(e)
			if err != nil {
				return nil, err
			}
			row[j] = val
		}
		rel.rows = append(rel.rows, row)
	}
	return rel, nil
}

func (x *executor) evalSetOp(s *sqlparser.SetOp) (*relation, error) {
	left, err := x.evalBody(s.Left)
	if err != nil {
		return nil, err
	}
	right, err := x.evalBody(s.Right)
	if err != nil {
		return nil, err
	}
	if len(left.cols) != len(right.cols) {
		return nil, fmt.Errorf("engine: UNION arms have %d and %d columns",
			len(left.cols), len(right.cols))
	}
	out := &relation{cols: left.cols}
	switch s.Kind {
	case sqlparser.SetIntersect:
		inRight := x.newRowIndex(len(right.rows))
		for _, r := range right.rows {
			inRight.bucket(r, true)
		}
		seen := x.newRowIndex(len(left.rows))
		for _, r := range left.rows {
			if inRight.lookup(r) < 0 {
				continue
			}
			if _, isNew := seen.bucket(r, true); !isNew {
				continue
			}
			out.rows = append(out.rows, r)
		}
	case sqlparser.SetExcept:
		inRight := x.newRowIndex(len(right.rows))
		for _, r := range right.rows {
			inRight.bucket(r, true)
		}
		seen := x.newRowIndex(len(left.rows))
		for _, r := range left.rows {
			if inRight.lookup(r) >= 0 {
				continue
			}
			if _, isNew := seen.bucket(r, true); !isNew {
				continue
			}
			out.rows = append(out.rows, r)
		}
	default:
		if s.All {
			out.rows = append(append([]sqltypes.Row(nil), left.rows...), right.rows...)
		} else {
			seen := x.newRowIndex(len(left.rows) + len(right.rows))
			for _, src := range [][]sqltypes.Row{left.rows, right.rows} {
				for _, r := range src {
					if _, isNew := seen.bucket(r, true); !isNew {
						continue
					}
					out.rows = append(out.rows, r)
				}
			}
		}
	}
	if len(s.OrderBy) > 0 {
		if err := sortRelationByOrdinals(out, s.OrderBy); err != nil {
			return nil, err
		}
	}
	if s.Limit != nil {
		if *s.Limit < 0 {
			return nil, &ErrInvalidLimit{Clause: "LIMIT", N: *s.Limit}
		}
		if int64(len(out.rows)) > *s.Limit {
			out.rows = out.rows[:*s.Limit]
		}
	}
	return out, nil
}

// sortRelationByOrdinals sorts a set-operation result; order keys must
// be ordinals or output column names (there is no underlying row scope).
func sortRelationByOrdinals(rel *relation, items []sqlparser.OrderItem) error {
	idx := make([]int, len(items))
	for i, it := range items {
		switch e := it.Expr.(type) {
		case *sqlparser.Literal:
			if e.Val.Kind() != sqltypes.KindInt {
				return fmt.Errorf("engine: ORDER BY ordinal must be an integer")
			}
			n := int(e.Val.Int())
			if n < 1 || n > len(rel.cols) {
				return fmt.Errorf("engine: ORDER BY position %d out of range", n)
			}
			idx[i] = n - 1
		case *sqlparser.ColumnRef:
			found := -1
			for j, c := range rel.cols {
				if strings.EqualFold(c, e.Name) {
					found = j
					break
				}
			}
			if found < 0 {
				return &ErrColumnNotFound{Name: e.Name}
			}
			idx[i] = found
		default:
			return fmt.Errorf("engine: ORDER BY on set operations supports ordinals and column names only")
		}
	}
	// Decorate-sort-undecorate: extract the key columns once, sort a
	// permutation, then reorder the rows.
	keys := make([][]sqltypes.Value, len(rel.rows))
	desc := make([]bool, len(items))
	for i, it := range items {
		desc[i] = it.Desc
	}
	for i, r := range rel.rows {
		k := make([]sqltypes.Value, len(idx))
		for j, col := range idx {
			k[j] = r[col]
		}
		keys[i] = k
	}
	perm := sortIndexByKeys(len(rel.rows), keys, desc)
	sorted := make([]sqltypes.Row, len(rel.rows))
	for i, k := range perm {
		sorted[i] = rel.rows[k]
	}
	rel.rows = sorted
	return nil
}

// encodeRowKey builds a collision-free string key for a row (used by
// DISTINCT, UNION and GROUP BY).
func encodeRowKey(r sqltypes.Row) string {
	var sb strings.Builder
	for _, v := range r {
		k := v.MapKey()
		val := k.Value()
		sb.WriteByte(byte(val.Kind()) + '0')
		s := val.String()
		sb.WriteString(strconv.Itoa(len(s)))
		sb.WriteByte(':')
		sb.WriteString(s)
	}
	return sb.String()
}

// source is a materialized FROM item: a frame plus its rows.
// scanCharged marks a source whose rows were already billed to
// work.scanned by a full table scan; the morsel dispatcher uses it to
// move that charge onto the workers so the cost model's sleeps overlap
// (see takeScanCharge).
type source struct {
	frame       *frame
	rows        []sqltypes.Row
	scanCharged bool
}

// outRow pairs a projected output row with the environment it was
// produced in. env may be nil when no later stage needs it (the batch
// projection drops it once ORDER BY is known to read only the output
// row).
type outRow struct {
	row sqltypes.Row
	env *evalEnv
}

// ErrInvalidLimit is returned for a negative LIMIT or OFFSET. The
// parser rejects negative literals, but ExecStmt accepts arbitrary
// programmatically-built ASTs, which used to panic slicing the output.
type ErrInvalidLimit struct {
	Clause string // "LIMIT" or "OFFSET"
	N      int64
}

func (e *ErrInvalidLimit) Error() string {
	return fmt.Sprintf("engine: %s must not be negative, got %d", e.Clause, e.N)
}

// evalSelect evaluates a SELECT core. Per-row expressions run as
// compiled programs from the statement's (cached) select plan; with
// Config.DisableExprCompile the same plan structure carries
// interpreter thunks, so both modes share one code path.
func (x *executor) evalSelect(s *sqlparser.Select) (*relation, error) {
	src, err := x.evalFromList(s.From, s.Where)
	if err != nil {
		return nil, err
	}

	// WHERE (before star expansion, matching interpreter error order).
	if s.Where != nil {
		if vp := x.vecPlanFor(s.Where, src.frame); vp != nil {
			var kept []sqltypes.Row
			var err error
			if x.parallelOK(len(src.rows)) {
				kept, err = x.vecFilterPar(vp, s.Where, src)
			} else {
				kept, err = x.vecFilter(vp, s.Where, src)
			}
			if err != nil {
				return nil, err
			}
			src.rows = kept
		} else {
			p := x.prog(s.Where, src.frame)
			kept := src.rows[:0:0]
			env := &evalEnv{frame: src.frame, x: x}
			for _, r := range src.rows {
				env.row = r
				v, err := p(env)
				if err != nil {
					return nil, err
				}
				if v.IsTrue() {
					kept = append(kept, r)
				}
			}
			src.rows = kept
		}
	}

	plan, err := x.selectPlan(s, src.frame)
	if err != nil {
		return nil, err
	}
	items, cols := plan.items, plan.cols

	// Static validation so reference errors surface on empty inputs too.
	for _, it := range items {
		if err := x.validateExpr(it.Expr, src.frame, nil); err != nil {
			return nil, err
		}
	}
	for _, e := range []sqlparser.Expr{s.Where, s.Having} {
		if e != nil {
			if err := x.validateExpr(e, src.frame, nil); err != nil {
				return nil, err
			}
		}
	}
	for _, g := range s.GroupBy {
		if err := x.validateExpr(g, src.frame, nil); err != nil {
			return nil, err
		}
	}
	for _, o := range s.OrderBy {
		if err := x.validateExpr(o.Expr, src.frame, cols); err != nil {
			return nil, err
		}
	}

	var outputs []outRow

	if len(s.GroupBy) > 0 || len(plan.aggs) > 0 {
		// Batch grouping: hash whole key columns at once and stream the
		// vectorizable aggregates into dense accumulators. Any batch
		// error falls back to the full row path (groups must be complete
		// before aggregation), which reproduces the interpreter's error.
		var groups []*group
		var vaggs []*vecAgg
		var vecAggIdx map[*sqlparser.FuncCall]int
		vecDone := false
		parCharged := false // morsel workers already billed work.grouped
		if x.vecOK() && plan.vecGB != nil {
			if x.parallelOK(len(src.rows)) {
				groups, vaggs, vecDone = x.vecGroupPar(plan, src)
				parCharged = vecDone
			}
			if !vecDone {
				groups, vaggs, _, vecDone = x.vecGroup(plan, src)
			}
		}
		if vecDone {
			vecAggIdx = make(map[*sqlparser.FuncCall]int, len(plan.vecAggs))
			for i, spec := range plan.vecAggs {
				vecAggIdx[spec.fc] = i
			}
		} else {
			groups, err = x.groupRows(src, plan.groupBy)
			if err != nil {
				return nil, err
			}
		}
		for gi, g := range groups {
			env := &evalEnv{frame: src.frame, x: x, aggs: make(map[*sqlparser.FuncCall]sqltypes.Value, len(plan.aggs))}
			switch {
			case g.first != nil:
				env.row = g.first
			case len(g.rows) > 0:
				env.row = g.rows[0]
			default:
				env.row = make(sqltypes.Row, src.frame.width)
			}
			for _, fc := range plan.aggs {
				if i, ok := vecAggIdx[fc]; ok {
					env.aggs[fc] = vaggs[i].finalize(gi)
					continue
				}
				v, err := x.computeAggregate(fc, plan.aggArgs[fc], src.frame, g.rows)
				if err != nil {
					return nil, err
				}
				env.aggs[fc] = v
			}
			if plan.having != nil {
				hv, err := plan.having(env)
				if err != nil {
					return nil, err
				}
				if !hv.IsTrue() {
					continue
				}
			}
			row, err := projectRow(plan.itemProgs, env)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, outRow{row: row, env: env})
			if !parCharged {
				x.work.grouped += g.size()
			}
		}
	} else if x.vecOK() && plan.vecItems.useVec() && (len(plan.orderFns) == 0 || plan.orderRowOnly) {
		if x.parallelOK(len(src.rows)) {
			outputs, err = x.vecProjectPar(plan, src)
		} else {
			outputs, err = x.vecProject(plan, src)
		}
		if err != nil {
			return nil, err
		}
	} else {
		for _, r := range src.rows {
			rowEnv := &evalEnv{frame: src.frame, x: x, row: r}
			row, err := projectRow(plan.itemProgs, rowEnv)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, outRow{row: row, env: rowEnv})
		}
	}

	// DISTINCT.
	if s.Distinct {
		ix := x.newRowIndex(len(outputs))
		kept := outputs[:0]
		for _, o := range outputs {
			if _, isNew := ix.bucket(o.row, true); isNew {
				kept = append(kept, o)
			}
		}
		outputs = kept
	}

	// ORDER BY: decorate-sort-undecorate — each key is computed exactly
	// once per output row, then rows are reordered by a precomputed
	// permutation.
	if len(plan.orderFns) > 0 {
		keys := make([][]sqltypes.Value, len(outputs))
		for i, o := range outputs {
			keys[i] = make([]sqltypes.Value, len(plan.orderFns))
			for j, fn := range plan.orderFns {
				v, err := fn(o.row, o.env)
				if err != nil {
					return nil, err
				}
				keys[i][j] = v
			}
		}
		idx := sortIndexByKeys(len(outputs), keys, plan.desc)
		sorted := make([]outRow, len(outputs))
		for i, k := range idx {
			sorted[i] = outputs[k]
		}
		outputs = sorted
	}

	if s.Offset != nil {
		if *s.Offset < 0 {
			return nil, &ErrInvalidLimit{Clause: "OFFSET", N: *s.Offset}
		}
		if off := int(*s.Offset); off >= len(outputs) {
			outputs = nil
		} else {
			outputs = outputs[off:]
		}
	}
	if s.Limit != nil {
		if *s.Limit < 0 {
			return nil, &ErrInvalidLimit{Clause: "LIMIT", N: *s.Limit}
		}
		if int64(len(outputs)) > *s.Limit {
			outputs = outputs[:*s.Limit]
		}
	}

	rel := &relation{cols: cols, rows: make([]sqltypes.Row, len(outputs))}
	for i, o := range outputs {
		rel.rows[i] = o.row
	}
	return rel, nil
}

// sortIndexByKeys returns the stable ordering of n rows under the
// decorated sort keys (one slice per row, with per-key direction).
func sortIndexByKeys(n int, keys [][]sqltypes.Value, desc []bool) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for j := range desc {
			c := sqltypes.CompareTotal(ka[j], kb[j])
			if desc[j] {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return idx
}

// expandStars replaces * and t.* items with explicit column references.
func expandStars(items []sqlparser.SelectItem, f *frame) ([]sqlparser.SelectItem, error) {
	out := make([]sqlparser.SelectItem, 0, len(items))
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		matched := false
		for _, r := range f.rels {
			if it.Table != "" && !strings.EqualFold(r.name, it.Table) {
				continue
			}
			matched = true
			for _, c := range r.cols {
				out = append(out, sqlparser.SelectItem{
					Expr: &sqlparser.ColumnRef{Table: r.name, Name: c},
				})
			}
		}
		if !matched && it.Table != "" {
			return nil, fmt.Errorf("engine: unknown table %q in %s.*", it.Table, it.Table)
		}
	}
	return out, nil
}

// outputColumns names the result columns.
func outputColumns(items []sqlparser.SelectItem) []string {
	cols := make([]string, len(items))
	for i, it := range items {
		switch {
		case it.Alias != "":
			cols[i] = it.Alias
		default:
			if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok {
				cols[i] = cr.Name
			} else {
				cols[i] = "column" + strconv.Itoa(i+1)
			}
		}
	}
	return cols
}

// projectRow materializes one output row from the compiled item
// programs.
func projectRow(itemProgs []program, env *evalEnv) (sqltypes.Row, error) {
	row := make(sqltypes.Row, len(itemProgs))
	for i, p := range itemProgs {
		v, err := p(env)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// group is one GROUP BY bucket. Batch grouping with fully-vectorized
// aggregates leaves rows nil and tracks only the first member row and
// the member count; the row path and partially-vectorized plans
// materialize rows (computeAggregate needs them).
type group struct {
	rows  []sqltypes.Row
	first sqltypes.Row
	n     int64
}

// size is the number of member rows, whether or not they were kept.
func (g *group) size() int64 {
	if g.rows == nil {
		return g.n
	}
	return int64(len(g.rows))
}

// groupRows buckets the source rows by the compiled GROUP BY key
// programs, preserving first-seen order (the row index hands out dense
// ids in insertion order). With no keys it forms a single (possibly
// empty) group.
func (x *executor) groupRows(src *source, keyProgs []program) ([]*group, error) {
	if len(keyProgs) == 0 {
		return []*group{{rows: src.rows}}, nil
	}
	ix := x.newRowIndex(0)
	var groups []*group
	env := &evalEnv{frame: src.frame, x: x}
	kvals := make(sqltypes.Row, len(keyProgs))
	for _, r := range src.rows {
		env.row = r
		for i, p := range keyProgs {
			v, err := p(env)
			if err != nil {
				return nil, err
			}
			kvals[i] = v
		}
		id, isNew := ix.bucket(kvals, false)
		if isNew {
			groups = append(groups, &group{})
		}
		groups[id].rows = append(groups[id].rows, r)
	}
	return groups, nil
}

// computeAggregate evaluates one aggregate call over a group; argProg
// is the call's compiled argument (nil for COUNT(*) and malformed
// calls, which error out before it is used).
func (x *executor) computeAggregate(fc *sqlparser.FuncCall, argProg program, f *frame, rows []sqltypes.Row) (sqltypes.Value, error) {
	if fc.Star {
		if fc.Name != "COUNT" {
			return sqltypes.Null, fmt.Errorf("engine: %s(*) is not valid", fc.Name)
		}
		return sqltypes.NewInt(int64(len(rows))), nil
	}
	if len(fc.Args) != 1 {
		return sqltypes.Null, fmt.Errorf("engine: %s takes exactly one argument", fc.Name)
	}
	env := &evalEnv{frame: f, x: x}
	var (
		count    int64
		sumInt   int64
		sumFloat float64
		isFloat  bool
		best     = sqltypes.Null
		seen     *rowIndex
		scratch  sqltypes.Row
	)
	if fc.Distinct {
		seen = x.newRowIndex(0)
		scratch = make(sqltypes.Row, 1)
	}
	for _, r := range rows {
		env.row = r
		v, err := argProg(env)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() {
			continue
		}
		if fc.Distinct {
			scratch[0] = v
			if _, isNew := seen.bucket(scratch, false); !isNew {
				continue
			}
		}
		count++
		switch fc.Name {
		case "COUNT":
		case "SUM", "AVG":
			if !v.IsNumeric() {
				return sqltypes.Null, fmt.Errorf("engine: %s of non-numeric value", fc.Name)
			}
			if v.Kind() == sqltypes.KindFloat {
				if !isFloat {
					isFloat = true
					sumFloat = float64(sumInt)
				}
				sumFloat += v.Float()
			} else if isFloat {
				sumFloat += v.Float()
			} else if s, ok := addInt64(sumInt, v.Int()); ok {
				sumInt = s
			} else {
				// Int64 overflow: promote the accumulator to float rather
				// than wrapping silently (see DESIGN.md, aggregates). The
				// result loses integer precision but keeps its magnitude
				// and sign.
				isFloat = true
				sumFloat = float64(sumInt) + float64(v.Int())
			}
		case "MIN", "MAX":
			if best.IsNull() {
				best = v
				continue
			}
			c, err := sqltypes.Compare(v, best)
			if err != nil {
				return sqltypes.Null, err
			}
			if (fc.Name == "MIN" && c < 0) || (fc.Name == "MAX" && c > 0) {
				best = v
			}
		}
	}
	switch fc.Name {
	case "COUNT":
		return sqltypes.NewInt(count), nil
	case "SUM":
		if count == 0 {
			return sqltypes.Null, nil
		}
		if isFloat {
			return sqltypes.NewFloat(sumFloat), nil
		}
		return sqltypes.NewInt(sumInt), nil
	case "AVG":
		if count == 0 {
			return sqltypes.Null, nil
		}
		if !isFloat {
			sumFloat = float64(sumInt)
		}
		return sqltypes.NewFloat(sumFloat / float64(count)), nil
	case "MIN", "MAX":
		return best, nil
	default:
		return sqltypes.Null, fmt.Errorf("engine: unknown aggregate %s", fc.Name)
	}
}

// addInt64 adds two int64s, reporting false on overflow.
func addInt64(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}
