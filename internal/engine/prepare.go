package engine

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
)

// This file implements prepared statements and the parse cache behind
// them. SQLoop's executors send the same statement templates every
// round — only bind values change — so the engine keeps the parsed form
// of recent statements in a bounded LRU keyed by (dialect, SQL text)
// and lets sessions pin a statement once (Prepare) and re-execute it by
// handle (ExecPrepared). Cached ASTs are shared read-only across
// sessions; the executor never mutates a statement it runs.
//
// Invalidation is relcache-style, per catalog object: every DDL bumps a
// generation counter for each object it touches (plus a whole-catalog
// generation), and a cached entry records the generations of the
// objects its statement references. The entry is served only while all
// of them are current, so a handle prepared before a DDL never replays
// a pre-DDL plan against the post-DDL catalog — while statements that
// don't reference the changed object survive. That distinction is what
// makes the cache effective for iterative queries: dropping or
// re-creating a per-round working table must not flush the
// loop-invariant round templates.
//
// Statements whose dependency set can't be derived (iterative CTEs and
// other compound forms) fall back to the whole-catalog generation:
// conservative, never stale. Pure DDL statements (CREATE/DROP/TRUNCATE
// and friends) carry an empty dependency set — their cached form is
// just the parse tree, which no catalog change can invalidate — so
// per-round snapshot churn like DROP TABLE delta; CREATE TABLE delta AS
// ... hits the cache from its second execution.

// defaultStmtCacheSize bounds the parse cache when Config.StmtCacheSize
// is zero.
const defaultStmtCacheSize = 512

// stmtKey identifies one cache entry. The dialect is part of the key so
// engines sharing SQL text across profiles can never serve each other's
// plans (cache keys follow the ISSUE's (dialect, SQL text) contract even
// though one Engine instance has a single dialect).
type stmtKey struct {
	dialect sqlparser.Dialect
	sql     string
}

// depSnapshot records what a cached parse depends on: the lowercased
// catalog objects the statement references with the generation each had
// when the snapshot was taken. names == nil means the dependency set
// could not be derived and `global` holds the whole-catalog fallback; a
// non-nil empty names slice means the statement depends on nothing and
// is always valid.
type depSnapshot struct {
	names  []string
	gens   []uint64
	global uint64
}

// stmtCacheEntry is one cached parse: the statement and the catalog
// dependencies it was validated under.
type stmtCacheEntry struct {
	key  stmtKey
	st   sqlparser.Statement
	deps depSnapshot
	// progs collects the compiled expression programs of this statement
	// (see compile.go); it lives and dies with the entry, so DDL
	// invalidation discards programs along with the parse.
	progs *progCache
}

// stmtCache is the bounded, mutex-guarded LRU.
type stmtCache struct {
	mu  sync.Mutex
	max int
	lru *list.List // front = most recent; values are *stmtCacheEntry
	m   map[stmtKey]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

func newStmtCache(max int) *stmtCache {
	return &stmtCache{max: max, lru: list.New(), m: make(map[stmtKey]*list.Element)}
}

// StmtCacheStats is a point-in-time view of the statement cache.
type StmtCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Size      int
}

// HitRate is hits / (hits + misses), 0 with no traffic.
func (s StmtCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// StmtCacheStats reports the statement cache counters (zero when the
// cache is disabled).
func (e *Engine) StmtCacheStats() StmtCacheStats {
	c := e.stmts
	if c == nil {
		return StmtCacheStats{}
	}
	c.mu.Lock()
	size := c.lru.Len()
	c.mu.Unlock()
	return StmtCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      size,
	}
}

// CatalogGen exposes the whole-catalog generation (tests and
// diagnostics).
func (e *Engine) CatalogGen() uint64 { return e.catalogGen.Load() }

// ObjectGen exposes one object's generation (tests and diagnostics).
func (e *Engine) ObjectGen(name string) uint64 {
	return e.objGen(strings.ToLower(name)).Load()
}

// noteDDL marks a catalog change to the named objects (lowercased by
// the caller or here — both are safe), invalidating every cached
// statement that references them plus all global-fallback entries.
func (e *Engine) noteDDL(names ...string) {
	e.catalogGen.Add(1)
	for _, n := range names {
		e.objGen(strings.ToLower(n)).Add(1)
	}
}

// objGen returns the generation counter for one lowercased object name,
// creating it on first sight. Counters are never removed: a dropped
// table's counter must keep its value so entries referencing it stay
// invalid, and re-creating the table bumps it again.
func (e *Engine) objGen(lc string) *atomic.Uint64 {
	if v, ok := e.objGens.Load(lc); ok {
		return v.(*atomic.Uint64)
	}
	v, _ := e.objGens.LoadOrStore(lc, new(atomic.Uint64))
	return v.(*atomic.Uint64)
}

// snapshotDeps captures the current generations of everything st
// references.
func (e *Engine) snapshotDeps(st sqlparser.Statement) depSnapshot {
	ds := depSnapshot{global: e.catalogGen.Load()}
	if names, ok := stmtObjects(st); ok {
		ds.names = names
		ds.gens = make([]uint64, len(names))
		for i, n := range names {
			ds.gens[i] = e.objGen(n).Load()
		}
	}
	return ds
}

// depsValid reports whether a snapshot is still current.
func (e *Engine) depsValid(ds depSnapshot) bool {
	if ds.names == nil {
		return ds.global == e.catalogGen.Load()
	}
	for i, n := range ds.names {
		if e.objGen(n).Load() != ds.gens[i] {
			return false
		}
	}
	return true
}

// stmtObjects derives the catalog objects a statement references
// (lowercased, sorted, deduplicated). ok == false means the statement
// form isn't modeled and the caller must fall back to whole-catalog
// invalidation. DDL targets themselves are excluded: the cached
// artifact is the parse tree, and CREATE/DROP of the target doesn't
// change how its own statement parses — only statements that *read*
// the object care.
func stmtObjects(st sqlparser.Statement) ([]string, bool) {
	set := make(map[string]struct{})
	add := func(name string) {
		if name != "" {
			set[strings.ToLower(name)] = struct{}{}
		}
	}
	ok := true
	switch s := st.(type) {
	case *sqlparser.SelectStmt:
		for _, cte := range s.With {
			depsBody(cte.Body, add)
		}
		depsBody(s.Body, add)
		// Plain CTE names shadow catalog objects within the statement.
		for _, cte := range s.With {
			delete(set, strings.ToLower(cte.Name))
		}
	case *sqlparser.InsertStmt:
		add(s.Table)
		depsBody(s.Source, add)
	case *sqlparser.UpdateStmt:
		add(s.Table)
		for _, te := range s.From {
			depsTE(te, add)
		}
		for _, a := range s.Sets {
			depsExpr(a.Value, add)
		}
		depsExpr(s.Where, add)
	case *sqlparser.DeleteStmt:
		add(s.Table)
		depsExpr(s.Where, add)
	case *sqlparser.CreateTableStmt:
		depsBody(s.AsSelect, add) // CTAS reads its sources; plain CREATE has none
	case *sqlparser.CreateViewStmt:
		depsBody(s.Body, add)
	case *sqlparser.CreateIndexStmt, *sqlparser.DropStmt, *sqlparser.TruncateStmt, *sqlparser.TxStmt:
		// Parse-stable regardless of catalog state: no dependencies.
	default:
		ok = false
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, ok
}

// depsBody collects table/view references from a select body, including
// derived tables, join trees and expression subqueries (WalkTableExprs
// alone misses the latter two classes).
func depsBody(b sqlparser.SelectBody, add func(string)) {
	switch s := b.(type) {
	case nil:
	case *sqlparser.Select:
		for _, te := range s.From {
			depsTE(te, add)
		}
		for _, it := range s.Items {
			depsExpr(it.Expr, add)
		}
		depsExpr(s.Where, add)
		for _, g := range s.GroupBy {
			depsExpr(g, add)
		}
		depsExpr(s.Having, add)
		for _, o := range s.OrderBy {
			depsExpr(o.Expr, add)
		}
	case *sqlparser.SetOp:
		depsBody(s.Left, add)
		depsBody(s.Right, add)
	case *sqlparser.Values:
		for _, row := range s.Rows {
			for _, e := range row {
				depsExpr(e, add)
			}
		}
	}
}

// depsTE collects references from one table expression.
func depsTE(te sqlparser.TableExpr, add func(string)) {
	switch t := te.(type) {
	case nil:
	case *sqlparser.TableName:
		add(t.Name)
	case *sqlparser.SubqueryTable:
		depsBody(t.Body, add)
	case *sqlparser.JoinExpr:
		depsTE(t.Left, add)
		depsTE(t.Right, add)
		depsExpr(t.On, add)
	}
}

// depsExpr collects references from subqueries inside an expression.
// WalkExpr does not descend into subquery bodies, so those are handled
// explicitly before recursing over scalar children.
func depsExpr(e sqlparser.Expr, add func(string)) {
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		switch v := x.(type) {
		case *sqlparser.Subquery:
			depsBody(v.Body, add)
		case *sqlparser.ExistsExpr:
			depsBody(v.Body, add)
		case *sqlparser.InExpr:
			depsBody(v.Sub, add) // List items are walked by WalkExpr itself
		}
		return true
	})
}

// cachedParse parses sql through the statement cache and reports the
// dependency snapshot the result is valid under, plus the entry's
// compiled-program cache. With the statement cache disabled it degrades
// to a plain parse with a statement-local program cache.
func (e *Engine) cachedParse(sql string) (sqlparser.Statement, depSnapshot, *progCache, error) {
	// A failed disk-catalog recovery must not look like an empty engine:
	// statements could then silently re-create (and wipe) tables whose
	// data is still on disk. Fail every statement instead.
	if err := e.recoverErr; err != nil {
		return nil, depSnapshot{}, nil, fmt.Errorf("engine: disk catalog recovery failed: %w", err)
	}
	c := e.stmts
	if c == nil {
		st, err := sqlparser.Parse(sql)
		if err != nil {
			return nil, depSnapshot{}, nil, err
		}
		return st, e.snapshotDeps(st), newProgCache(), nil
	}
	key := stmtKey{dialect: e.cfg.Dialect, sql: sql}
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		ent := el.Value.(*stmtCacheEntry)
		if e.depsValid(ent.deps) {
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			c.hits.Add(1)
			if r := e.metrics.Load(); r != nil {
				r.Counter("sqloop_stmt_cache_hits").Inc()
			}
			return ent.st, ent.deps, ent.progs, nil
		}
		// Stale dependencies: drop the entry and re-parse below. This is
		// the DDL-invalidation miss.
		c.lru.Remove(el)
		delete(c.m, key)
	}
	c.mu.Unlock()

	st, err := sqlparser.Parse(sql)
	if err != nil {
		// Parse failures are not cached: the error path is cold and a
		// poisoned entry could mask a later fix of a generated statement.
		return nil, depSnapshot{}, nil, err
	}
	deps := e.snapshotDeps(st)
	progs := newProgCache()
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		// Another session cached the same statement while we parsed:
		// share its AST and programs instead of splitting the cache.
		ent := el.Value.(*stmtCacheEntry)
		st, deps, progs = ent.st, ent.deps, ent.progs
	} else {
		c.m[key] = c.lru.PushFront(&stmtCacheEntry{key: key, st: st, deps: deps, progs: progs})
		for c.lru.Len() > c.max {
			back := c.lru.Back()
			c.lru.Remove(back)
			delete(c.m, back.Value.(*stmtCacheEntry).key)
			c.evictions.Add(1)
			if r := e.metrics.Load(); r != nil {
				r.Counter("sqloop_stmt_cache_evictions").Inc()
			}
		}
	}
	c.mu.Unlock()
	c.misses.Add(1)
	if r := e.metrics.Load(); r != nil {
		r.Counter("sqloop_stmt_cache_misses").Inc()
	}
	return st, deps, progs, nil
}

// preparedStmt is one session-held prepared statement.
type preparedStmt struct {
	sql   string
	st    sqlparser.Statement
	deps  depSnapshot
	progs *progCache
}

// Prepare parses (through the cache) and pins a statement, returning a
// session-scoped handle for ExecPrepared. Handles die with the session.
func (s *Session) Prepare(sql string) (int64, error) {
	st, deps, progs, err := s.eng.cachedParse(sql)
	if err != nil {
		return 0, err
	}
	if s.prepared == nil {
		s.prepared = make(map[int64]*preparedStmt)
	}
	s.nextStmt++
	s.prepared[s.nextStmt] = &preparedStmt{sql: sql, st: st, deps: deps, progs: progs}
	return s.nextStmt, nil
}

// ExecPrepared executes a prepared handle with the given bind args. If
// any DDL touched an object the statement references since it was
// prepared (or last revalidated), the statement is re-parsed against
// the current catalog first, so a stale plan is never served. A
// still-valid re-execution counts as a cache hit: the handle served a
// statement without parsing, which is exactly what the hit/miss ratio
// is meant to measure.
func (s *Session) ExecPrepared(id int64, args []sqltypes.Value) (*Result, error) {
	ps, ok := s.prepared[id]
	if !ok {
		return nil, fmt.Errorf("engine: unknown prepared statement %d", id)
	}
	if s.eng.depsValid(ps.deps) {
		if c := s.eng.stmts; c != nil {
			c.hits.Add(1)
			if r := s.eng.metrics.Load(); r != nil {
				r.Counter("sqloop_stmt_cache_hits").Inc()
			}
		}
	} else {
		st, deps, progs, err := s.eng.cachedParse(ps.sql)
		if err != nil {
			return nil, err
		}
		ps.st, ps.deps, ps.progs = st, deps, progs
	}
	return s.execStmt(ps.st, args, ps.progs)
}

// ClosePrepared releases a handle. Closing an unknown handle is an
// error so protocol bugs surface instead of leaking.
func (s *Session) ClosePrepared(id int64) error {
	if _, ok := s.prepared[id]; !ok {
		return fmt.Errorf("engine: unknown prepared statement %d", id)
	}
	delete(s.prepared, id)
	return nil
}

// PreparedCount reports the session's live handles (tests).
func (s *Session) PreparedCount() int { return len(s.prepared) }
