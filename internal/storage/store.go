// Package storage defines the primary-data store interface the embedded
// engine uses for table rows, plus the default heap (hash-indexed,
// insertion-ordered) backend that stands in for the PostgreSQL profile.
// Ordered backends live in internal/btree and internal/lsm.
package storage

import (
	"fmt"

	"sqloop/internal/sqltypes"
)

// Store holds the rows of one table keyed by primary key. Implementations
// are not safe for concurrent use; the engine serializes access with
// per-table locks.
//
// Scan order is implementation-defined (heap: insertion order; btree and
// lsm: key order) — exactly the situation SQLoop faces across real
// engines, so nothing above this interface may rely on scan order.
type Store interface {
	// Insert adds a new row. It fails with ErrDuplicateKey if key exists.
	Insert(key sqltypes.Key, row sqltypes.Row) error
	// Get returns the row for key.
	Get(key sqltypes.Key) (sqltypes.Row, bool)
	// Update replaces the row for key, reporting whether it existed.
	Update(key sqltypes.Key, row sqltypes.Row) bool
	// Delete removes the row for key, reporting whether it existed.
	Delete(key sqltypes.Key) bool
	// Len returns the number of live rows.
	Len() int
	// Scan visits every live row until fn returns false.
	Scan(fn func(key sqltypes.Key, row sqltypes.Row) bool)
	// Clear removes all rows.
	Clear()
	// Name identifies the backend ("heap", "btree", "lsm", "disk").
	Name() string
}

// Durable backends implement these optional interfaces in addition to
// Store; the engine type-asserts for them at statement and checkpoint
// boundaries. In-memory backends implement none of them.
type (
	// Committer makes all operations logged so far durable (WAL commit
	// record + fsync). The engine commits every write-locked store at
	// statement end, so a crash loses at most the statement in flight.
	Committer interface{ Commit() error }
	// Checkpointer flushes all dirty pages to the data file and
	// truncates the write-ahead log — the WAL↔checkpoint contract: once
	// a higher-level snapshot is durable, the log tail before it is
	// dead weight.
	Checkpointer interface{ Checkpoint() error }
	// Dropper releases the store's on-disk files (DROP TABLE).
	Dropper interface{ Drop() error }
)

// ErrDuplicateKey is returned by Insert when the key already exists.
var ErrDuplicateKey = fmt.Errorf("storage: duplicate primary key")

// Kind selects a storage backend.
type Kind int

// Backend kinds. The engine maps its three dialect profiles onto the
// in-memory kinds; KindDisk is the durable page-based backend
// (internal/pager) selected explicitly via DataDir-aware options.
const (
	KindHeap Kind = iota + 1
	KindBTree
	KindLSM
	KindDisk
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindHeap:
		return "heap"
	case KindBTree:
		return "btree"
	case KindLSM:
		return "lsm"
	case KindDisk:
		return "disk"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a backend name ("heap", "btree", "lsm", "disk") to
// its Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "heap":
		return KindHeap, nil
	case "btree":
		return KindBTree, nil
	case "lsm":
		return KindLSM, nil
	case "disk":
		return KindDisk, nil
	default:
		return 0, fmt.Errorf("storage: unknown backend %q (want heap, btree, lsm or disk)", name)
	}
}

// heapStore is a hash map with an insertion-ordered log for scans.
// Deletes tombstone log entries; the log compacts once more than half of
// it is dead.
type heapStore struct {
	rows map[sqltypes.Key]int // key -> index into log
	log  []heapEntry
	dead int
}

type heapEntry struct {
	key  sqltypes.Key
	row  sqltypes.Row
	dead bool
}

// NewHeap returns an empty heap store.
func NewHeap() Store {
	return &heapStore{rows: make(map[sqltypes.Key]int)}
}

var _ Store = (*heapStore)(nil)

func (h *heapStore) Name() string { return "heap" }

func (h *heapStore) Insert(key sqltypes.Key, row sqltypes.Row) error {
	if _, ok := h.rows[key]; ok {
		return ErrDuplicateKey
	}
	h.rows[key] = len(h.log)
	h.log = append(h.log, heapEntry{key: key, row: row})
	return nil
}

func (h *heapStore) Get(key sqltypes.Key) (sqltypes.Row, bool) {
	i, ok := h.rows[key]
	if !ok {
		return nil, false
	}
	return h.log[i].row, true
}

func (h *heapStore) Update(key sqltypes.Key, row sqltypes.Row) bool {
	i, ok := h.rows[key]
	if !ok {
		return false
	}
	h.log[i].row = row
	return true
}

func (h *heapStore) Delete(key sqltypes.Key) bool {
	i, ok := h.rows[key]
	if !ok {
		return false
	}
	h.log[i].dead = true
	h.log[i].row = nil
	delete(h.rows, key)
	h.dead++
	if h.dead > len(h.log)/2 && h.dead > 64 {
		h.compact()
	}
	return true
}

func (h *heapStore) compact() {
	// Copy the survivors into a right-sized slice instead of compacting
	// in place: in-place compaction keeps the full backing array (and
	// the dead rows beyond the new length) reachable, so a large
	// transient working table would pin its peak memory for the life of
	// the store.
	live := make([]heapEntry, 0, len(h.log)-h.dead)
	for _, e := range h.log {
		if !e.dead {
			h.rows[e.key] = len(live)
			live = append(live, e)
		}
	}
	h.log = live
	h.dead = 0
}

func (h *heapStore) Len() int { return len(h.rows) }

func (h *heapStore) Scan(fn func(key sqltypes.Key, row sqltypes.Row) bool) {
	for _, e := range h.log {
		if e.dead {
			continue
		}
		if !fn(e.key, e.row) {
			return
		}
	}
}

func (h *heapStore) Clear() {
	h.rows = make(map[sqltypes.Key]int)
	h.log = nil
	h.dead = 0
}
