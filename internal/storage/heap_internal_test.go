package storage

import (
	"testing"

	"sqloop/internal/sqltypes"
)

// TestHeapCompactionReleasesMemory pins the fix for the compaction
// memory leak: compacting in place kept the original backing array (and
// every dead row past the new length) reachable, so a table that grew
// large once never gave the memory back. Compaction must reallocate
// right-sized.
func TestHeapCompactionReleasesMemory(t *testing.T) {
	h := NewHeap().(*heapStore)
	const n = 100000
	for i := int64(0); i < n; i++ {
		if err := h.Insert(sqltypes.NewInt(i).MapKey(), sqltypes.Row{sqltypes.NewInt(i)}); err != nil {
			t.Fatal(err)
		}
	}
	grown := cap(h.log)
	// Delete all but a sliver; the >half-dead threshold forces a
	// compaction along the way.
	for i := int64(0); i < n-100; i++ {
		if !h.Delete(sqltypes.NewInt(i).MapKey()) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if h.Len() != 100 {
		t.Fatalf("Len = %d", h.Len())
	}
	if c := cap(h.log); c >= grown/2 {
		t.Fatalf("log capacity %d did not shrink from %d after compaction", c, grown)
	}
	// Survivors intact and scannable.
	seen := 0
	h.Scan(func(k sqltypes.Key, r sqltypes.Row) bool {
		if k.Value().Int() < n-100 {
			t.Fatalf("dead key %v surfaced", k.Value())
		}
		seen++
		return true
	})
	if seen != 100 {
		t.Fatalf("scan saw %d rows", seen)
	}
	if h.dead != 0 && h.dead > len(h.log)/2 {
		t.Fatalf("dead counter %d inconsistent with log %d", h.dead, len(h.log))
	}
}

// TestHeapClearReleasesLog: Clear must drop the backing log entirely.
func TestHeapClearReleasesLog(t *testing.T) {
	h := NewHeap().(*heapStore)
	for i := int64(0); i < 10000; i++ {
		_ = h.Insert(sqltypes.NewInt(i).MapKey(), sqltypes.Row{sqltypes.NewInt(i)})
	}
	h.Clear()
	if cap(h.log) != 0 {
		t.Fatalf("log capacity %d after Clear", cap(h.log))
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d after Clear", h.Len())
	}
}
