package storage_test

import (
	"testing"

	"sqloop/internal/storage"
	"sqloop/internal/storage/storagetest"
)

func TestHeapConformance(t *testing.T) {
	storagetest.Run(t, storage.NewHeap)
}

func TestKindString(t *testing.T) {
	if storage.KindHeap.String() != "heap" || storage.KindBTree.String() != "btree" ||
		storage.KindLSM.String() != "lsm" || storage.KindDisk.String() != "disk" {
		t.Error("Kind.String wrong")
	}
}

func TestParseKind(t *testing.T) {
	for _, name := range []string{"heap", "btree", "lsm", "disk"} {
		k, err := storage.ParseKind(name)
		if err != nil || k.String() != name {
			t.Errorf("ParseKind(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := storage.ParseKind("papyrus"); err == nil {
		t.Error("ParseKind accepted an unknown backend")
	}
}
