package storage_test

import (
	"testing"

	"sqloop/internal/storage"
	"sqloop/internal/storage/storagetest"
)

func TestHeapConformance(t *testing.T) {
	storagetest.Run(t, storage.NewHeap)
}

func TestKindString(t *testing.T) {
	if storage.KindHeap.String() != "heap" || storage.KindBTree.String() != "btree" ||
		storage.KindLSM.String() != "lsm" {
		t.Error("Kind.String wrong")
	}
}
