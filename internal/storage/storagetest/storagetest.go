// Package storagetest provides a model-based conformance suite run
// against every storage backend (heap, btree, lsm, disk) so all four
// agree with a reference map model under randomized operation
// sequences.
package storagetest

import (
	"math/rand"
	"sort"
	"testing"

	"sqloop/internal/sqltypes"
	"sqloop/internal/storage"
)

// Run exercises the full conformance suite against stores produced by
// newStore.
func Run(t *testing.T, newStore func() storage.Store) {
	t.Helper()
	t.Run("Basic", func(t *testing.T) { testBasic(t, newStore()) })
	t.Run("DuplicateInsert", func(t *testing.T) { testDuplicate(t, newStore()) })
	t.Run("UpdateDeleteMissing", func(t *testing.T) { testMissing(t, newStore()) })
	t.Run("Clear", func(t *testing.T) { testClear(t, newStore()) })
	t.Run("ScanEarlyStop", func(t *testing.T) { testScanEarlyStop(t, newStore()) })
	t.Run("ModelRandomOps", func(t *testing.T) { testModel(t, newStore, 0xC0FFEE, 5000) })
	t.Run("ModelChurn", func(t *testing.T) { testModel(t, newStore, 42, 20000) })
	t.Run("MixedKeyKinds", func(t *testing.T) { testMixedKinds(t, newStore()) })
	t.Run("TombstoneAfterDelete", func(t *testing.T) { testTombstone(t, newStore()) })
	t.Run("ClearThenReinsert", func(t *testing.T) { testClearReinsert(t, newStore()) })
}

func key(i int64) sqltypes.Key { return sqltypes.NewInt(i).MapKey() }

func row(i int64, s string) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewString(s)}
}

func testBasic(t *testing.T, s storage.Store) {
	if s.Len() != 0 {
		t.Fatalf("new store Len = %d", s.Len())
	}
	for i := int64(0); i < 100; i++ {
		if err := s.Insert(key(i), row(i, "v")); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	r, ok := s.Get(key(42))
	if !ok || r[0].Int() != 42 {
		t.Fatalf("Get(42) = %v, %v", r, ok)
	}
	if !s.Update(key(42), row(42, "updated")) {
		t.Fatal("Update(42) reported missing")
	}
	r, _ = s.Get(key(42))
	if r[1].Str() != "updated" {
		t.Fatalf("after update, row = %v", r)
	}
	if !s.Delete(key(42)) {
		t.Fatal("Delete(42) reported missing")
	}
	if _, ok := s.Get(key(42)); ok {
		t.Fatal("Get(42) after delete succeeded")
	}
	if s.Len() != 99 {
		t.Fatalf("Len after delete = %d", s.Len())
	}
}

func testDuplicate(t *testing.T, s storage.Store) {
	if err := s.Insert(key(1), row(1, "a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(key(1), row(1, "b")); err != storage.ErrDuplicateKey {
		t.Fatalf("duplicate Insert err = %v, want ErrDuplicateKey", err)
	}
	// Delete then re-insert must succeed.
	s.Delete(key(1))
	if err := s.Insert(key(1), row(1, "c")); err != nil {
		t.Fatalf("re-Insert after delete: %v", err)
	}
	r, _ := s.Get(key(1))
	if r[1].Str() != "c" {
		t.Fatalf("re-inserted row = %v", r)
	}
}

func testMissing(t *testing.T, s storage.Store) {
	if s.Update(key(9), row(9, "x")) {
		t.Error("Update of missing key reported success")
	}
	if s.Delete(key(9)) {
		t.Error("Delete of missing key reported success")
	}
}

func testClear(t *testing.T, s storage.Store) {
	for i := int64(0); i < 50; i++ {
		_ = s.Insert(key(i), row(i, "v"))
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatalf("Len after Clear = %d", s.Len())
	}
	n := 0
	s.Scan(func(sqltypes.Key, sqltypes.Row) bool { n++; return true })
	if n != 0 {
		t.Fatalf("Scan after Clear visited %d rows", n)
	}
	if err := s.Insert(key(1), row(1, "again")); err != nil {
		t.Fatalf("Insert after Clear: %v", err)
	}
}

func testScanEarlyStop(t *testing.T, s storage.Store) {
	for i := int64(0); i < 100; i++ {
		_ = s.Insert(key(i), row(i, "v"))
	}
	n := 0
	s.Scan(func(sqltypes.Key, sqltypes.Row) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early-stopped scan visited %d rows, want 10", n)
	}
}

// testModel runs a randomized operation sequence against the store and a
// map model, checking agreement after every operation batch.
func testModel(t *testing.T, newStore func() storage.Store, seed int64, ops int) {
	s := newStore()
	model := make(map[sqltypes.Key]string)
	rng := rand.New(rand.NewSource(seed))
	keys := int64(500) // small key space forces collisions/churn
	for i := 0; i < ops; i++ {
		k := key(rng.Int63n(keys))
		switch rng.Intn(4) {
		case 0: // insert
			v := randWord(rng)
			err := s.Insert(k, sqltypes.Row{k.Value(), sqltypes.NewString(v)})
			if _, exists := model[k]; exists {
				if err != storage.ErrDuplicateKey {
					t.Fatalf("op %d: Insert existing key err = %v", i, err)
				}
			} else {
				if err != nil {
					t.Fatalf("op %d: Insert new key err = %v", i, err)
				}
				model[k] = v
			}
		case 1: // update
			v := randWord(rng)
			ok := s.Update(k, sqltypes.Row{k.Value(), sqltypes.NewString(v)})
			_, exists := model[k]
			if ok != exists {
				t.Fatalf("op %d: Update ok=%v model=%v", i, ok, exists)
			}
			if exists {
				model[k] = v
			}
		case 2: // delete
			ok := s.Delete(k)
			_, exists := model[k]
			if ok != exists {
				t.Fatalf("op %d: Delete ok=%v model=%v", i, ok, exists)
			}
			delete(model, k)
		case 3: // get
			r, ok := s.Get(k)
			v, exists := model[k]
			if ok != exists {
				t.Fatalf("op %d: Get ok=%v model=%v", i, ok, exists)
			}
			if exists && r[1].Str() != v {
				t.Fatalf("op %d: Get = %q, model %q", i, r[1].Str(), v)
			}
		}
		if s.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, model %d", i, s.Len(), len(model))
		}
	}
	// Final full-scan agreement.
	got := make(map[sqltypes.Key]string, len(model))
	var scanKeys []int64
	s.Scan(func(k sqltypes.Key, r sqltypes.Row) bool {
		got[k] = r[1].Str()
		scanKeys = append(scanKeys, k.Value().Int())
		return true
	})
	if len(got) != len(model) {
		t.Fatalf("scan saw %d rows, model has %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("scan disagrees at %v: %q vs %q", k, got[k], v)
		}
	}
	// Ordered backends must scan in key order; heap (insertion order)
	// and disk (page order) make no ordering promise.
	ordered := s.Name() == "btree" || s.Name() == "lsm"
	if ordered && !sort.SliceIsSorted(scanKeys, func(i, j int) bool {
		return scanKeys[i] < scanKeys[j]
	}) {
		t.Fatalf("%s scan out of order", s.Name())
	}
}

func testMixedKinds(t *testing.T, s storage.Store) {
	mixed := []sqltypes.Value{
		sqltypes.NewInt(1),
		sqltypes.NewFloat(2.5),
		sqltypes.NewString("alpha"),
		sqltypes.NewString("beta"),
		sqltypes.NewBool(true),
	}
	for i, v := range mixed {
		if err := s.Insert(v.MapKey(), sqltypes.Row{v, sqltypes.NewInt(int64(i))}); err != nil {
			t.Fatalf("Insert(%v): %v", v, err)
		}
	}
	if s.Len() != len(mixed) {
		t.Fatalf("Len = %d", s.Len())
	}
	for i, v := range mixed {
		r, ok := s.Get(v.MapKey())
		if !ok || r[1].Int() != int64(i) {
			t.Fatalf("Get(%v) = %v, %v", v, r, ok)
		}
	}
	// int 1 and float 1.0 are the same key.
	if err := s.Insert(sqltypes.NewFloat(1.0).MapKey(), sqltypes.Row{}); err != storage.ErrDuplicateKey {
		t.Fatalf("float 1.0 should collide with int 1, err = %v", err)
	}
}

// testTombstone hammers the delete → absent → re-insert cycle on a
// single key: backends with tombstones or dead slots (lsm, disk) must
// not resurrect old values or leak live-count.
func testTombstone(t *testing.T, s storage.Store) {
	k := key(7)
	for gen := 0; gen < 200; gen++ {
		v := sqltypes.NewInt(int64(gen))
		if err := s.Insert(k, sqltypes.Row{v}); err != nil {
			t.Fatalf("gen %d: Insert: %v", gen, err)
		}
		r, ok := s.Get(k)
		if !ok || r[0].Int() != int64(gen) {
			t.Fatalf("gen %d: Get = %v, %v", gen, r, ok)
		}
		if !s.Delete(k) {
			t.Fatalf("gen %d: Delete reported missing", gen)
		}
		if _, ok := s.Get(k); ok {
			t.Fatalf("gen %d: key visible after delete", gen)
		}
		if s.Len() != 0 {
			t.Fatalf("gen %d: Len = %d after delete", gen, s.Len())
		}
	}
	n := 0
	s.Scan(func(sqltypes.Key, sqltypes.Row) bool { n++; return true })
	if n != 0 {
		t.Fatalf("scan visited %d rows over tombstones", n)
	}
}

// testClearReinsert alternates bulk load, Clear and reload, checking
// that cleared state never bleeds into the next generation.
func testClearReinsert(t *testing.T, s storage.Store) {
	for gen := int64(0); gen < 5; gen++ {
		for i := int64(0); i < 300; i++ {
			if err := s.Insert(key(i), row(i*10+gen, "g")); err != nil {
				t.Fatalf("gen %d: Insert(%d): %v", gen, i, err)
			}
		}
		if s.Len() != 300 {
			t.Fatalf("gen %d: Len = %d", gen, s.Len())
		}
		r, ok := s.Get(key(123))
		if !ok || r[0].Int() != 1230+gen {
			t.Fatalf("gen %d: Get(123) = %v, %v", gen, r, ok)
		}
		s.Clear()
		if s.Len() != 0 {
			t.Fatalf("gen %d: Len after Clear = %d", gen, s.Len())
		}
		if _, ok := s.Get(key(123)); ok {
			t.Fatalf("gen %d: Get succeeded after Clear", gen)
		}
	}
}

func randWord(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 3+rng.Intn(8))
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
