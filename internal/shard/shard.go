// Package shard implements the cross-shard delta routing used by the
// scale-out execution path: hash-partitioning of rows by a key column
// and a compact binary codec for shipping routed row batches between
// engine endpoints.
//
// Partition must agree bit-for-bit with the engines' PARTHASH SQL
// function, because the coordinator decides Go-side which shard a
// message row belongs to while each shard's gather statement filters
// SQL-side with PARTHASH(id, n) = s. Both sides therefore hash through
// sqltypes.Value.Hash and reduce with int64(h & MaxInt64) % n.
package shard

import (
	"encoding/binary"
	"fmt"
	"math"

	"sqloop/internal/sqltypes"
)

// Partition returns the shard index in [0, n) that owns key. It is the
// Go-side twin of the engine's PARTHASH(key, n). A nil key maps to
// shard 0; callers are expected to have filtered NULL keys out SQL-side
// (both the `PARTHASH(id,n) = s` and `<> s` predicates reject NULL), so
// the value only matters for defensive completeness.
func Partition(key any, n int) int {
	if n <= 1 {
		return 0
	}
	if key == nil {
		return 0
	}
	v, err := sqltypes.FromGo(key)
	if err != nil || v.IsNull() {
		return 0
	}
	return int(int64(v.Hash()&math.MaxInt64) % int64(n))
}

// Batch is a routable set of rows sharing one column layout. Values are
// the driver's Go representations: nil, int64, float64, string or bool.
type Batch struct {
	Columns []string
	Rows    [][]any
}

// Route splits b into n per-shard batches by hashing the key column
// (index keyCol into Columns). Every input row lands in exactly one
// output batch, so the union of the outputs is the input multiset.
func Route(b Batch, keyCol, n int) ([]Batch, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: route: shard count %d must be positive", n)
	}
	if keyCol < 0 || keyCol >= len(b.Columns) {
		return nil, fmt.Errorf("shard: route: key column %d out of range for %d columns", keyCol, len(b.Columns))
	}
	out := make([]Batch, n)
	for i := range out {
		out[i].Columns = b.Columns
	}
	for _, row := range b.Rows {
		if len(row) != len(b.Columns) {
			return nil, fmt.Errorf("shard: route: row has %d values, want %d", len(row), len(b.Columns))
		}
		s := Partition(row[keyCol], n)
		out[s].Rows = append(out[s].Rows, row)
	}
	return out, nil
}

// Merge concatenates batches sharing one column layout into a single
// batch, preserving row order across inputs. The elastic repartition
// and straggler-handoff paths use it to fold per-source batches into
// one shippable unit; empty inputs contribute nothing and a zero-batch
// input list yields the zero Batch.
func Merge(batches ...Batch) (Batch, error) {
	var out Batch
	for _, b := range batches {
		if len(b.Columns) == 0 && len(b.Rows) == 0 {
			continue
		}
		if out.Columns == nil {
			out.Columns = b.Columns
		} else if len(b.Columns) != len(out.Columns) {
			return Batch{}, fmt.Errorf("shard: merge: %d columns, want %d", len(b.Columns), len(out.Columns))
		} else {
			for i, c := range b.Columns {
				if c != out.Columns[i] {
					return Batch{}, fmt.Errorf("shard: merge: column %d is %q, want %q", i, c, out.Columns[i])
				}
			}
		}
		out.Rows = append(out.Rows, b.Rows...)
	}
	return out, nil
}

// Wire format: magic, version, uvarint column count, column names as
// uvarint-length strings, uvarint row count, then rows as one kind byte
// per value followed by the value payload.
const (
	batchMagic   = 0xB7
	batchVersion = 1

	kindNull   = 0
	kindInt    = 1
	kindFloat  = 2
	kindString = 3
	kindBool   = 4
)

// EncodeBatch serialises b for cross-shard transfer.
func EncodeBatch(b Batch) []byte {
	buf := []byte{batchMagic, batchVersion}
	buf = binary.AppendUvarint(buf, uint64(len(b.Columns)))
	for _, c := range b.Columns {
		buf = binary.AppendUvarint(buf, uint64(len(c)))
		buf = append(buf, c...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(b.Rows)))
	for _, row := range b.Rows {
		for _, v := range row {
			buf = appendValue(buf, v)
		}
	}
	return buf
}

func appendValue(buf []byte, v any) []byte {
	switch t := v.(type) {
	case nil:
		return append(buf, kindNull)
	case int64:
		buf = append(buf, kindInt)
		return binary.AppendVarint(buf, t)
	case int:
		buf = append(buf, kindInt)
		return binary.AppendVarint(buf, int64(t))
	case float64:
		buf = append(buf, kindFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(t))
	case string:
		buf = append(buf, kindString)
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		return append(buf, t...)
	case []byte:
		buf = append(buf, kindString)
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		return append(buf, t...)
	case bool:
		buf = append(buf, kindBool)
		if t {
			return append(buf, 1)
		}
		return append(buf, 0)
	default:
		// Unknown driver types degrade to their string rendering rather
		// than corrupting the stream.
		s := fmt.Sprint(t)
		buf = append(buf, kindString)
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...)
	}
}

// DecodeBatch parses an EncodeBatch payload. Corrupt or truncated input
// returns an error; it never panics.
func DecodeBatch(data []byte) (Batch, error) {
	d := decoder{data: data}
	if len(data) < 2 || data[0] != batchMagic || data[1] != batchVersion {
		return Batch{}, fmt.Errorf("shard: decode: bad header")
	}
	d.off = 2
	nCols, err := d.uvarint("column count")
	if err != nil {
		return Batch{}, err
	}
	if nCols > uint64(len(data)) {
		return Batch{}, fmt.Errorf("shard: decode: column count %d exceeds payload", nCols)
	}
	b := Batch{Columns: make([]string, nCols)}
	for i := range b.Columns {
		s, err := d.str("column name")
		if err != nil {
			return Batch{}, err
		}
		b.Columns[i] = s
	}
	nRows, err := d.uvarint("row count")
	if err != nil {
		return Batch{}, err
	}
	if nCols > 0 && nRows > uint64(len(data)) {
		return Batch{}, fmt.Errorf("shard: decode: row count %d exceeds payload", nRows)
	}
	if nRows > 0 && nCols == 0 {
		return Batch{}, fmt.Errorf("shard: decode: %d rows with zero columns", nRows)
	}
	b.Rows = make([][]any, 0, nRows)
	for r := uint64(0); r < nRows; r++ {
		row := make([]any, nCols)
		for c := range row {
			v, err := d.value()
			if err != nil {
				return Batch{}, err
			}
			row[c] = v
		}
		b.Rows = append(b.Rows, row)
	}
	if d.off != len(data) {
		return Batch{}, fmt.Errorf("shard: decode: %d trailing bytes", len(data)-d.off)
	}
	return b, nil
}

type decoder struct {
	data []byte
	off  int
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("shard: decode: bad %s varint", what)
	}
	d.off += n
	return v, nil
}

func (d *decoder) str(what string) (string, error) {
	n, err := d.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.data)-d.off) {
		return "", fmt.Errorf("shard: decode: %s length %d exceeds payload", what, n)
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) value() (any, error) {
	if d.off >= len(d.data) {
		return nil, fmt.Errorf("shard: decode: truncated value")
	}
	kind := d.data[d.off]
	d.off++
	switch kind {
	case kindNull:
		return nil, nil
	case kindInt:
		v, n := binary.Varint(d.data[d.off:])
		if n <= 0 {
			return nil, fmt.Errorf("shard: decode: bad int varint")
		}
		d.off += n
		return v, nil
	case kindFloat:
		if len(d.data)-d.off < 8 {
			return nil, fmt.Errorf("shard: decode: truncated float")
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
		d.off += 8
		return v, nil
	case kindString:
		return d.str("string value")
	case kindBool:
		if d.off >= len(d.data) {
			return nil, fmt.Errorf("shard: decode: truncated bool")
		}
		v := d.data[d.off] != 0
		d.off++
		return v, nil
	default:
		return nil, fmt.Errorf("shard: decode: unknown value kind %d", kind)
	}
}
