package shard

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzShardRouteRoundTrip drives the full cross-shard delta path —
// hash-partition a batch into per-shard batches, encode each for
// exchange, decode on the receiving side, and reassemble — and checks
// the multiset of rows survives unchanged with every row on the shard
// that owns its key. The corpus bytes are interpreted as a compact row
// script so the fuzzer can explore value shapes, not just codec bytes.
func FuzzShardRouteRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(2))
	f.Add([]byte{0, 1, 1, 2, 5, 2, 10, 3, 3, 'a', 'b', 'c', 4, 1}, uint8(4))
	f.Add([]byte{1, 200, 2, 255, 0, 0, 0, 1}, uint8(1))
	f.Add([]byte{0, 0, 0, 0, 1, 1, 2, 2}, uint8(7))

	f.Fuzz(func(t *testing.T, script []byte, nShards uint8) {
		n := int(nShards%8) + 1
		in := Batch{Columns: []string{"id", "val", "tag"}}
		// Build rows from the script: each triple of operations pulls a
		// value for id, val and tag.
		for off := 0; off+1 < len(script) && len(in.Rows) < 256; {
			row := make([]any, 3)
			for c := 0; c < 3 && off < len(script); c++ {
				var v any
				op := script[off]
				off++
				switch op % 5 {
				case 0:
					v = nil
				case 1:
					d, w := binary.Varint(script[off:])
					if w <= 0 {
						w = 0
					}
					off += w
					v = d
				case 2:
					if off+8 <= len(script) {
						v = math.Float64frombits(binary.LittleEndian.Uint64(script[off:]))
						off += 8
					} else {
						v = float64(op)
					}
				case 3:
					end := off + int(op%13)
					if end > len(script) {
						end = len(script)
					}
					v = string(script[off:end])
					off = end
				case 4:
					v = op%2 == 0
				}
				row[c] = v
			}
			in.Rows = append(in.Rows, row)
		}

		parts, err := Route(in, 0, n)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		var reassembled [][]any
		for s, p := range parts {
			dec, err := DecodeBatch(EncodeBatch(p))
			if err != nil {
				t.Fatalf("shard %d: decode(encode): %v", s, err)
			}
			if len(dec.Columns) != len(in.Columns) {
				t.Fatalf("shard %d: columns %v, want %v", s, dec.Columns, in.Columns)
			}
			for _, row := range dec.Rows {
				if owner := Partition(row[0], n); owner != s {
					t.Fatalf("shard %d holds row %v owned by shard %d", s, row, owner)
				}
				reassembled = append(reassembled, row)
			}
		}
		// Encoding canonicalises int → int64 and []byte → string, so
		// compare through the same canonical lens.
		if got, want := multisetKey(reassembled), multisetKey(in.Rows); got != want {
			t.Fatalf("multiset changed across route+codec:\n got %s\nwant %s", got, want)
		}
	})
}

// FuzzDecodeBatch hammers the decoder with arbitrary bytes: it must
// either fail cleanly or produce a batch that re-encodes and re-decodes
// to the same rows. It must never panic.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeBatch(Batch{Columns: []string{"id", "val"}, Rows: [][]any{{int64(1), 2.5}, {nil, "x"}}}))
	f.Add([]byte{batchMagic, batchVersion, 1, 2, 'i', 'd', 1, kindInt, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		again, err := DecodeBatch(EncodeBatch(b))
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch failed: %v", err)
		}
		if got, want := multisetKey(again.Rows), multisetKey(b.Rows); got != want {
			t.Fatalf("re-encode changed rows: %s vs %s", got, want)
		}
	})
}
