package shard

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"sqloop/internal/sqltypes"
)

// TestPartitionMatchesValueHash pins the Go-side partitioner to the
// engine's PARTHASH definition: int64(Value.Hash() & MaxInt64) % n.
func TestPartitionMatchesValueHash(t *testing.T) {
	keys := []any{int64(0), int64(1), int64(-7), int64(12345), 3.5, 2.0, "node-9", true, false}
	for _, n := range []int{1, 2, 3, 4, 7, 256} {
		for _, k := range keys {
			v, err := sqltypes.FromGo(k)
			if err != nil {
				t.Fatalf("FromGo(%v): %v", k, err)
			}
			want := 0
			if n > 1 {
				want = int(int64(v.Hash()&math.MaxInt64) % int64(n))
			}
			if got := Partition(k, n); got != want {
				t.Errorf("Partition(%v, %d) = %d, want %d", k, n, got, want)
			}
		}
	}
	if got := Partition(nil, 4); got != 0 {
		t.Errorf("Partition(nil, 4) = %d, want 0", got)
	}
	if got := Partition(int64(99), 0); got != 0 {
		t.Errorf("Partition(99, 0) = %d, want 0", got)
	}
}

// TestIntegralFloatAgreesWithInt documents the Value.Hash invariant the
// exchange relies on: an integral float partitions like the equal int,
// so a DOUBLE id column routes identically to a BIGINT one.
func TestIntegralFloatAgreesWithInt(t *testing.T) {
	for _, n := range []int{2, 4, 16} {
		for i := int64(-5); i < 50; i++ {
			if a, b := Partition(i, n), Partition(float64(i), n); a != b {
				t.Fatalf("Partition(%d, %d)=%d but Partition(%g, %d)=%d", i, n, a, float64(i), n, b)
			}
		}
	}
}

func TestRoutePreservesMultiset(t *testing.T) {
	b := Batch{
		Columns: []string{"id", "val"},
		Rows: [][]any{
			{int64(1), 1.5}, {int64(2), 2.5}, {int64(3), nil},
			{int64(1), -1.0}, {nil, 9.0}, {int64(100), 0.0},
		},
	}
	for _, n := range []int{1, 2, 4} {
		parts, err := Route(b, 0, n)
		if err != nil {
			t.Fatalf("Route(n=%d): %v", n, err)
		}
		if len(parts) != n {
			t.Fatalf("Route(n=%d) returned %d batches", n, len(parts))
		}
		var merged [][]any
		for s, p := range parts {
			for _, row := range p.Rows {
				if got := Partition(row[0], n); got != s {
					t.Errorf("n=%d: row %v landed in shard %d, owner is %d", n, row, s, got)
				}
				merged = append(merged, row)
			}
		}
		if got, want := multisetKey(merged), multisetKey(b.Rows); got != want {
			t.Errorf("n=%d: routed multiset %q != input %q", n, got, want)
		}
	}
}

func TestRouteErrors(t *testing.T) {
	b := Batch{Columns: []string{"id"}, Rows: [][]any{{int64(1)}}}
	if _, err := Route(b, 0, 0); err == nil {
		t.Error("Route with 0 shards should fail")
	}
	if _, err := Route(b, 2, 2); err == nil {
		t.Error("Route with out-of-range key column should fail")
	}
	bad := Batch{Columns: []string{"id", "val"}, Rows: [][]any{{int64(1)}}}
	if _, err := Route(bad, 0, 2); err == nil {
		t.Error("Route with ragged row should fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Batch{
		{},
		{Columns: []string{"id"}},
		{Columns: []string{"id", "val", "cnt"}, Rows: [][]any{
			{int64(1), 3.25, int64(2)},
			{int64(-9), math.Inf(1), int64(0)},
			{nil, -0.0, int64(math.MaxInt64)},
			{int64(math.MinInt64), 1e308, int64(-1)},
		}},
		{Columns: []string{"s", "b"}, Rows: [][]any{
			{"", true}, {"héllo\x00world", false}, {"x", nil},
		}},
	}
	for i, b := range cases {
		enc := EncodeBatch(b)
		dec, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(b), normalize(dec)) {
			t.Errorf("case %d: round trip mismatch:\n in: %#v\nout: %#v", i, b, dec)
		}
	}
}

// TestEncodeNormalizesWideTypes checks int and []byte inputs decode as
// the driver's canonical int64 / string.
func TestEncodeNormalizesWideTypes(t *testing.T) {
	b := Batch{Columns: []string{"a", "b"}, Rows: [][]any{{7, []byte("raw")}}}
	dec, err := DecodeBatch(EncodeBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Rows[0][0]; got != int64(7) {
		t.Errorf("int encoded as %T(%v), want int64(7)", got, got)
	}
	if got := dec.Rows[0][1]; got != "raw" {
		t.Errorf("[]byte encoded as %T(%v), want \"raw\"", got, got)
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	good := EncodeBatch(Batch{Columns: []string{"id", "val"}, Rows: [][]any{{int64(1), 2.0}, {int64(3), nil}}})
	cases := map[string][]byte{
		"empty":          {},
		"short header":   {batchMagic},
		"bad magic":      append([]byte{0x00}, good[1:]...),
		"bad version":    append([]byte{batchMagic, 99}, good[2:]...),
		"truncated":      good[:len(good)-3],
		"trailing bytes": append(append([]byte{}, good...), 0xFF),
		"huge col count": {batchMagic, batchVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
	}
	for name, data := range cases {
		if _, err := DecodeBatch(data); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

// normalize maps rows into comparable canonical forms (nil slices vs
// empty slices, NaN-safe floats).
func normalize(b Batch) [][]string {
	out := make([][]string, 0, len(b.Rows)+1)
	out = append(out, append([]string(nil), b.Columns...))
	for _, row := range b.Rows {
		r := make([]string, len(row))
		for i, v := range row {
			r[i] = canonValue(v)
		}
		out = append(out, r)
	}
	return out
}

func canonValue(v any) string {
	switch t := v.(type) {
	case nil:
		return "∅"
	case int:
		return fmt.Sprintf("i%d", t)
	case int64:
		return fmt.Sprintf("i%d", t)
	case float64:
		return fmt.Sprintf("f%016x", math.Float64bits(t))
	case []byte:
		return "s" + string(t)
	case string:
		return "s" + t
	case bool:
		return fmt.Sprintf("b%v", t)
	default:
		return fmt.Sprintf("?%v", t)
	}
}

func multisetKey(rows [][]any) string {
	keys := make([]string, len(rows))
	for i, row := range rows {
		s := ""
		for _, v := range row {
			s += canonValue(v) + "|"
		}
		keys[i] = s
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

func TestMergeConcatenatesAndValidates(t *testing.T) {
	a := Batch{Columns: []string{"id", "val"}, Rows: [][]any{{int64(1), 1.5}, {int64(2), 2.5}}}
	b := Batch{Columns: []string{"id", "val"}, Rows: [][]any{{int64(3), nil}}}
	empty := Batch{}
	emptyCols := Batch{Columns: []string{"id", "val"}}

	got, err := Merge(a, empty, b, emptyCols)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]any{{int64(1), 1.5}, {int64(2), 2.5}, {int64(3), nil}}
	if !reflect.DeepEqual(got.Columns, a.Columns) || !reflect.DeepEqual(got.Rows, want) {
		t.Fatalf("Merge = %+v, want cols %v rows %v", got, a.Columns, want)
	}

	// Merge then Route must preserve the combined multiset — the
	// invariant the repartition path depends on.
	routed, err := Route(got, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var flat [][]any
	for _, p := range routed {
		flat = append(flat, p.Rows...)
	}
	if multisetKey(flat) != multisetKey(want) {
		t.Fatalf("Merge+Route lost rows: %q != %q", multisetKey(flat), multisetKey(want))
	}

	if out, err := Merge(); err != nil || out.Columns != nil || out.Rows != nil {
		t.Fatalf("Merge() = %+v, %v; want zero batch", out, err)
	}
	if _, err := Merge(a, Batch{Columns: []string{"id"}, Rows: [][]any{{int64(9)}}}); err == nil {
		t.Error("Merge with mismatched column counts should fail")
	}
	if _, err := Merge(a, Batch{Columns: []string{"id", "cnt"}, Rows: [][]any{{int64(9), int64(1)}}}); err == nil {
		t.Error("Merge with renamed column should fail")
	}
}

func TestMergeSurvivesCodecRoundTrip(t *testing.T) {
	a := Batch{Columns: []string{"id", "val"}, Rows: [][]any{{int64(1), 0.5}, {int64(7), math.Inf(1)}}}
	b := Batch{Columns: []string{"id", "val"}, Rows: [][]any{{int64(4), -2.25}}}
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBatch(EncodeBatch(merged))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, merged) {
		t.Fatalf("codec round trip changed merged batch:\n got %+v\nwant %+v", dec, merged)
	}
}
