// Package vec provides the column-oriented batch format behind the
// engine's vectorized execution path: fixed-capacity batches of rows
// are transposed into typed column vectors with null bitmaps, and the
// hot operators (filter, projection, group-by, join probe) run tight
// per-column kernels over selection vectors instead of per-row closure
// chains. The MonetDB/X100 lesson applied to SQLoop's round loop:
// interpretation, hashing and bounds checks are paid once per ~1024-row
// batch, not once per row.
//
// The contract with the engine is strict value equivalence: every
// kernel produces exactly the Values the row-at-a-time interpreter
// would (including NULL propagation, int/float widening and integer
// wraparound), and any input a kernel cannot reproduce exactly is
// reported as an error so the engine can re-run that batch through the
// row path.
package vec

import (
	"sqloop/internal/sqltypes"
)

// BatchSize is the number of rows processed per batch. Large enough to
// amortize per-batch setup, small enough that a batch's column vectors
// stay cache-resident.
const BatchSize = 1024

// Vec is one column of a batch: either a typed vector (all non-null
// values share one kind) or a generic Value vector for mixed-kind
// columns. A constant vector broadcasts index 0 to every position.
type Vec struct {
	kind     sqltypes.Kind // element kind when typed
	generic  bool          // values live in Any (mixed or unknown kinds)
	constant bool          // single value broadcast over n positions
	n        int

	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Any    []sqltypes.Value

	hasNulls bool
	nulls    []uint64 // bitmap; valid only when hasNulls
}

// Len is the logical length of the vector (the batch size it was
// produced for, even when constant).
func (v *Vec) Len() int { return v.n }

// IsConst reports whether the vector is a broadcast constant.
func (v *Vec) IsConst() bool { return v.constant }

// TypedKind returns the element kind for a typed vector;
// ok is false for generic (mixed-kind) vectors.
func (v *Vec) TypedKind() (sqltypes.Kind, bool) {
	if v.generic {
		return sqltypes.KindNull, false
	}
	return v.kind, true
}

func (v *Vec) at(i int) int {
	if v.constant {
		return 0
	}
	return i
}

// nullWords returns the bitmap length needed for n positions.
func nullWords(n int) int { return (n + 63) / 64 }

func (v *Vec) nullBit(i int) bool {
	return v.nulls[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// IsNullAt reports whether position i is SQL NULL.
func (v *Vec) IsNullAt(i int) bool {
	i = v.at(i)
	if v.generic {
		return v.Any[i].IsNull()
	}
	return v.hasNulls && v.nullBit(i)
}

// SetNull marks position i as NULL (typed vectors only; generic
// vectors store the Null value directly).
func (v *Vec) SetNull(i int) {
	i = v.at(i)
	if v.generic {
		v.Any[i] = sqltypes.Null
		return
	}
	if !v.hasNulls {
		v.ensureNulls()
	}
	v.nulls[uint(i)>>6] |= 1 << (uint(i) & 63)
}

func (v *Vec) ensureNulls() {
	w := nullWords(cap2(v.n))
	if cap(v.nulls) < w {
		v.nulls = make([]uint64, w)
	} else {
		v.nulls = v.nulls[:w]
		for i := range v.nulls {
			v.nulls[i] = 0
		}
	}
	v.hasNulls = true
}

// cap2 rounds a batch length up to BatchSize so scratch buffers are
// allocated once and reused across batches of varying tail sizes.
func cap2(n int) int {
	if n < BatchSize {
		return BatchSize
	}
	return n
}

// reset clears the vector to an empty typed state of length n.
func (v *Vec) reset(n int) {
	v.n = n
	v.generic = false
	v.constant = false
	v.hasNulls = false
	v.kind = sqltypes.KindNull
}

// ResetInts prepares v as a typed int64 vector of length n.
func (v *Vec) ResetInts(n int) {
	v.reset(n)
	v.kind = sqltypes.KindInt
	if cap(v.Ints) < n {
		v.Ints = make([]int64, cap2(n))
	}
	v.Ints = v.Ints[:n]
}

// ResetFloats prepares v as a typed float64 vector of length n.
func (v *Vec) ResetFloats(n int) {
	v.reset(n)
	v.kind = sqltypes.KindFloat
	if cap(v.Floats) < n {
		v.Floats = make([]float64, cap2(n))
	}
	v.Floats = v.Floats[:n]
}

// ResetStrs prepares v as a typed string vector of length n.
func (v *Vec) ResetStrs(n int) {
	v.reset(n)
	v.kind = sqltypes.KindString
	if cap(v.Strs) < n {
		v.Strs = make([]string, cap2(n))
	}
	v.Strs = v.Strs[:n]
}

// ResetBools prepares v as a typed bool vector of length n.
func (v *Vec) ResetBools(n int) {
	v.reset(n)
	v.kind = sqltypes.KindBool
	if cap(v.Bools) < n {
		v.Bools = make([]bool, cap2(n))
	}
	v.Bools = v.Bools[:n]
}

// ResetAny prepares v as a generic Value vector of length n, cleared
// to NULL.
func (v *Vec) ResetAny(n int) {
	v.reset(n)
	v.generic = true
	if cap(v.Any) < n {
		v.Any = make([]sqltypes.Value, cap2(n))
	}
	v.Any = v.Any[:n]
	for i := range v.Any {
		v.Any[i] = sqltypes.Value{}
	}
}

// SetAny stores a Value at position i of a generic vector.
func (v *Vec) SetAny(i int, val sqltypes.Value) { v.Any[i] = val }

// SetBool stores a non-null bool at position i of a bool vector.
func (v *Vec) SetBool(i int, b bool) { v.Bools[i] = b }

// SetConst makes v a broadcast of val over n logical positions.
func (v *Vec) SetConst(val sqltypes.Value, n int) {
	v.reset(n)
	v.constant = true
	switch val.Kind() {
	case sqltypes.KindInt:
		v.kind = sqltypes.KindInt
		if cap(v.Ints) < 1 {
			v.Ints = make([]int64, 1, cap2(1))
		}
		v.Ints = v.Ints[:1]
		v.Ints[0] = val.Int()
	case sqltypes.KindFloat:
		v.kind = sqltypes.KindFloat
		if cap(v.Floats) < 1 {
			v.Floats = make([]float64, 1, cap2(1))
		}
		v.Floats = v.Floats[:1]
		v.Floats[0] = val.Float()
	case sqltypes.KindString:
		v.kind = sqltypes.KindString
		if cap(v.Strs) < 1 {
			v.Strs = make([]string, 1, cap2(1))
		}
		v.Strs = v.Strs[:1]
		v.Strs[0] = val.Str()
	case sqltypes.KindBool:
		v.kind = sqltypes.KindBool
		if cap(v.Bools) < 1 {
			v.Bools = make([]bool, 1, cap2(1))
		}
		v.Bools = v.Bools[:1]
		v.Bools[0] = val.Bool()
	default: // NULL constant
		v.generic = true
		if cap(v.Any) < 1 {
			v.Any = make([]sqltypes.Value, 1, cap2(1))
		}
		v.Any = v.Any[:1]
		v.Any[0] = sqltypes.Null
	}
}

// Get materializes the Value at position i.
func (v *Vec) Get(i int) sqltypes.Value {
	i = v.at(i)
	if v.generic {
		return v.Any[i]
	}
	if v.hasNulls && v.nullBit(i) {
		return sqltypes.Null
	}
	switch v.kind {
	case sqltypes.KindInt:
		return sqltypes.NewInt(v.Ints[i])
	case sqltypes.KindFloat:
		return sqltypes.NewFloat(v.Floats[i])
	case sqltypes.KindString:
		return sqltypes.NewString(v.Strs[i])
	case sqltypes.KindBool:
		return sqltypes.NewBool(v.Bools[i])
	default:
		return sqltypes.Null
	}
}

// Truth classifies position i for three-valued logic: 1 for boolean
// TRUE, -1 for NULL, 0 for everything else (FALSE and non-boolean
// values, which SQL conditions treat as not-true).
func (v *Vec) Truth(i int) int8 {
	i = v.at(i)
	if v.generic {
		val := v.Any[i]
		if val.IsNull() {
			return -1
		}
		if val.IsTrue() {
			return 1
		}
		return 0
	}
	if v.hasNulls && v.nullBit(i) {
		return -1
	}
	if v.kind == sqltypes.KindBool && v.Bools[i] {
		return 1
	}
	return 0
}

// TrueSel appends to dst the positions from sel whose value is boolean
// TRUE (the filter kernel: condition vector -> selection vector).
func (v *Vec) TrueSel(sel []int, dst []int) []int {
	if !v.generic && v.kind == sqltypes.KindBool && !v.constant {
		if !v.hasNulls {
			for _, i := range sel {
				if v.Bools[i] {
					dst = append(dst, i)
				}
			}
			return dst
		}
		for _, i := range sel {
			if v.Bools[i] && !v.nullBit(i) {
				dst = append(dst, i)
			}
		}
		return dst
	}
	for _, i := range sel {
		if v.Truth(i) == 1 {
			dst = append(dst, i)
		}
	}
	return dst
}

// FromRows transposes column off of rows[0:n] into v. The column is
// typed when every non-null value shares one kind and demoted to the
// generic representation otherwise. Rows narrower than off contribute
// NULL, matching the row path's defensive column read.
func (v *Vec) FromRows(rows []sqltypes.Row, off, n int) {
	v.reset(n)
	kind := sqltypes.KindNull
	for i := 0; i < n; i++ {
		var val sqltypes.Value
		if r := rows[i]; off < len(r) {
			val = r[off]
		}
		if val.IsNull() {
			if kind != sqltypes.KindNull {
				v.SetNull(i)
			}
			continue
		}
		if kind == sqltypes.KindNull {
			// First non-null value fixes the column kind; positions seen
			// so far were all NULL.
			kind = val.Kind()
			switch kind {
			case sqltypes.KindInt:
				v.ResetInts(n)
			case sqltypes.KindFloat:
				v.ResetFloats(n)
			case sqltypes.KindString:
				v.ResetStrs(n)
			case sqltypes.KindBool:
				v.ResetBools(n)
			}
			for j := 0; j < i; j++ {
				v.SetNull(j)
			}
		} else if val.Kind() != kind {
			v.fromRowsGeneric(rows, off, n)
			return
		}
		switch kind {
		case sqltypes.KindInt:
			v.Ints[i] = val.Int()
		case sqltypes.KindFloat:
			v.Floats[i] = val.Float()
		case sqltypes.KindString:
			v.Strs[i] = val.Str()
		case sqltypes.KindBool:
			v.Bools[i] = val.Bool()
		}
	}
	if kind == sqltypes.KindNull {
		// Entirely NULL column.
		v.ResetAny(n)
	}
}

// fromRowsGeneric refills the column as generic Values (mixed kinds).
func (v *Vec) fromRowsGeneric(rows []sqltypes.Row, off, n int) {
	v.ResetAny(n)
	for i := 0; i < n; i++ {
		if r := rows[i]; off < len(r) {
			v.Any[i] = r[off]
		}
	}
}

// FillSel grows sel to the identity selection [0, n).
func FillSel(sel []int, n int) []int {
	sel = sel[:0]
	for i := 0; i < n; i++ {
		sel = append(sel, i)
	}
	return sel
}

// Cursor yields successive batch windows over a materialized row set —
// the batch iterator the engine's operators exchange at their
// boundaries.
type Cursor struct {
	n   int
	pos int
}

// NewCursor returns a cursor over n rows.
func NewCursor(n int) *Cursor { return &Cursor{n: n} }

// Next returns the next window [lo, hi); ok is false when exhausted.
func (c *Cursor) Next() (lo, hi int, ok bool) {
	if c.pos >= c.n {
		return 0, 0, false
	}
	lo = c.pos
	hi = lo + BatchSize
	if hi > c.n {
		hi = c.n
	}
	c.pos = hi
	return lo, hi, true
}
