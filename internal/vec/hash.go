package vec

import (
	"math"

	"sqloop/internal/sqltypes"
)

// FNV-1a parameters, matching sqltypes.Value.Hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// nanHash is the canonical hash for float NaN: Value.Hash mixes the
// raw bit pattern, but grouping must merge every NaN payload into one
// bucket, so all NaNs hash like math.NaN().
var nanHash = hashTagged(2, math.Float64bits(math.NaN()))

// hashTagged is the FNV-1a fold of a kind tag byte followed by the
// eight little-endian bytes of u — the loop inside Value.Hash without
// the per-byte closure.
func hashTagged(tag byte, u uint64) uint64 {
	h := uint64(fnvOffset64)
	h = (h ^ uint64(tag)) * fnvPrime64
	for s := 0; s < 64; s += 8 {
		h = (h ^ uint64(byte(u>>s))) * fnvPrime64
	}
	return h
}

// hashInt is Value.Hash for an int64.
func hashInt(i int64) uint64 { return hashTagged(1, uint64(i)) }

// hashFloat is Value.Hash for a float64 with NaN canonicalized.
func hashFloat(f float64) uint64 {
	if f == math.Trunc(f) && !math.IsInf(f, 0) && f >= math.MinInt64 && f <= math.MaxInt64 {
		// Integral floats hash as ints so 1 and 1.0 join.
		return hashInt(int64(f))
	}
	if math.IsNaN(f) {
		return nanHash
	}
	return hashTagged(2, math.Float64bits(f))
}

// HashValue is sqltypes.Value.Hash with NaN canonicalized — the value
// hash the engine's grouping machinery uses.
func HashValue(v sqltypes.Value) uint64 {
	switch v.Kind() {
	case sqltypes.KindInt:
		return hashInt(v.Int())
	case sqltypes.KindFloat:
		return hashFloat(v.Float())
	default:
		return v.Hash()
	}
}

// mixRow folds one value hash into a running row hash, byte by byte.
func mixRow(h, hv uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h = (h ^ uint64(byte(hv>>s))) * fnvPrime64
	}
	return h
}

// HashRow combines the value hashes of a row into one 64-bit key,
// bit-identical to the engine's historical rowHash.
func HashRow(r sqltypes.Row) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range r {
		h = mixRow(h, HashValue(v))
	}
	return h
}

// HashInit seeds dst[i] with the FNV offset basis for each i in sel.
func HashInit(dst []uint64, sel []int) {
	for _, i := range sel {
		dst[i] = fnvOffset64
	}
}

// HashMix folds column v into the running row hashes dst for each
// position in sel: after HashInit and one HashMix per key column,
// dst[i] equals HashRow of that row's key tuple.
func (v *Vec) HashMix(dst []uint64, sel []int) {
	if !v.generic && !v.constant && !v.hasNulls {
		switch v.kind {
		case sqltypes.KindInt:
			for _, i := range sel {
				dst[i] = mixRow(dst[i], hashInt(v.Ints[i]))
			}
			return
		case sqltypes.KindFloat:
			for _, i := range sel {
				dst[i] = mixRow(dst[i], hashFloat(v.Floats[i]))
			}
			return
		}
	}
	for _, i := range sel {
		dst[i] = mixRow(dst[i], HashValue(v.Get(i)))
	}
}
