package vec

import (
	"math"
	"testing"

	"sqloop/internal/sqltypes"
)

// hashCorpus covers every kind plus the numeric edge cases grouping
// cares about: integral floats, NaN, signed zero, infinities.
func hashCorpus() []sqltypes.Value {
	return []sqltypes.Value{
		sqltypes.Null,
		sqltypes.NewInt(0),
		sqltypes.NewInt(1),
		sqltypes.NewInt(-1),
		sqltypes.NewInt(math.MaxInt64),
		sqltypes.NewInt(math.MinInt64),
		sqltypes.NewFloat(0),
		sqltypes.NewFloat(math.Copysign(0, -1)),
		sqltypes.NewFloat(1),
		sqltypes.NewFloat(1.5),
		sqltypes.NewFloat(-2.25),
		sqltypes.NewFloat(math.Inf(1)),
		sqltypes.NewFloat(math.Inf(-1)),
		sqltypes.NewFloat(math.NaN()),
		sqltypes.NewFloat(1e18),
		sqltypes.NewFloat(1e300),
		sqltypes.NewString(""),
		sqltypes.NewString("a"),
		sqltypes.NewString("hello world"),
		sqltypes.NewBool(true),
		sqltypes.NewBool(false),
	}
}

func isNaN(v sqltypes.Value) bool {
	return v.Kind() == sqltypes.KindFloat && math.IsNaN(v.Float())
}

func TestHashValueMatchesValueHash(t *testing.T) {
	canonNaN := sqltypes.NewFloat(math.NaN()).Hash()
	for _, v := range hashCorpus() {
		got := HashValue(v)
		want := v.Hash()
		if isNaN(v) {
			want = canonNaN
		}
		if got != want {
			t.Errorf("HashValue(%v) = %d, want %d", v, got, want)
		}
	}
}

// TestHashRowMatchesScalarFold pins HashRow to the engine's historical
// rowHash: FNV offset, then each (NaN-canonicalized) value hash mixed
// byte by byte.
func TestHashRowMatchesScalarFold(t *testing.T) {
	corpus := hashCorpus()
	row := sqltypes.Row(corpus)
	want := uint64(fnvOffset64)
	for _, v := range row {
		hv := v.Hash()
		if isNaN(v) {
			hv = sqltypes.NewFloat(math.NaN()).Hash()
		}
		for s := 0; s < 64; s += 8 {
			want = (want ^ uint64(byte(hv>>s))) * fnvPrime64
		}
	}
	if got := HashRow(row); got != want {
		t.Fatalf("HashRow = %d, want %d", got, want)
	}
}

func TestHashMixMatchesHashRow(t *testing.T) {
	rows := []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewFloat(2.5), sqltypes.NewString("x")},
		{sqltypes.NewInt(-7), sqltypes.NewFloat(math.NaN()), sqltypes.Null},
		{sqltypes.Null, sqltypes.NewFloat(3), sqltypes.NewString("")},
		{sqltypes.NewInt(42), sqltypes.NewFloat(math.Copysign(0, -1)), sqltypes.NewBool(true)},
	}
	n := len(rows)
	sel := FillSel(nil, n)
	dst := make([]uint64, n)
	HashInit(dst, sel)
	for off := 0; off < 3; off++ {
		var v Vec
		v.FromRows(rows, off, n)
		v.HashMix(dst, sel)
	}
	for i, r := range rows {
		if dst[i] != HashRow(r) {
			t.Errorf("row %d: columnar hash %d != HashRow %d", i, dst[i], HashRow(r))
		}
	}
}

func TestFromRowsTypedAndNulls(t *testing.T) {
	rows := []sqltypes.Row{
		{sqltypes.NewInt(1)},
		{sqltypes.Null},
		{sqltypes.NewInt(3)},
	}
	var v Vec
	v.FromRows(rows, 0, 3)
	if k, ok := v.TypedKind(); !ok || k != sqltypes.KindInt {
		t.Fatalf("expected typed int column, got kind=%v typed=%v", k, ok)
	}
	if !v.IsNullAt(1) || v.IsNullAt(0) || v.IsNullAt(2) {
		t.Fatalf("null bitmap wrong")
	}
	for i, r := range rows {
		if got := v.Get(i); got != r[0] {
			t.Errorf("Get(%d) = %v, want %v", i, got, r[0])
		}
	}
}

func TestFromRowsDemotesMixedKinds(t *testing.T) {
	rows := []sqltypes.Row{
		{sqltypes.NewInt(1)},
		{sqltypes.NewString("x")},
		{sqltypes.NewFloat(2.5)},
	}
	var v Vec
	v.FromRows(rows, 0, 3)
	if _, ok := v.TypedKind(); ok {
		t.Fatalf("expected generic column for mixed kinds")
	}
	for i, r := range rows {
		if got := v.Get(i); got != r[0] {
			t.Errorf("Get(%d) = %v, want %v", i, got, r[0])
		}
	}
}

func TestFromRowsShortRowAndAllNull(t *testing.T) {
	rows := []sqltypes.Row{
		{},
		{sqltypes.Null},
	}
	var v Vec
	v.FromRows(rows, 0, 2)
	for i := 0; i < 2; i++ {
		if !v.Get(i).IsNull() {
			t.Errorf("position %d: expected NULL", i)
		}
	}
}

func TestSetConstAndTruth(t *testing.T) {
	var v Vec
	v.SetConst(sqltypes.NewBool(true), 5)
	if v.Len() != 5 || !v.IsConst() {
		t.Fatalf("const vec misconfigured")
	}
	for i := 0; i < 5; i++ {
		if v.Truth(i) != 1 {
			t.Errorf("Truth(%d) != 1", i)
		}
	}
	v.SetConst(sqltypes.Null, 3)
	if v.Truth(2) != -1 {
		t.Errorf("NULL const Truth != -1")
	}
	v.SetConst(sqltypes.NewInt(7), 3)
	if v.Truth(0) != 0 {
		t.Errorf("non-bool Truth != 0")
	}
	if got := v.Get(2); got != sqltypes.NewInt(7) {
		t.Errorf("const Get = %v", got)
	}
}

func TestTrueSel(t *testing.T) {
	rows := []sqltypes.Row{
		{sqltypes.NewBool(true)},
		{sqltypes.NewBool(false)},
		{sqltypes.Null},
		{sqltypes.NewBool(true)},
	}
	var v Vec
	v.FromRows(rows, 0, 4)
	sel := FillSel(nil, 4)
	got := v.TrueSel(sel, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("TrueSel = %v, want [0 3]", got)
	}
}

// kernelColumn builds a column from a value list.
func kernelColumn(vals []sqltypes.Value) *Vec {
	rows := make([]sqltypes.Row, len(vals))
	for i, v := range vals {
		rows[i] = sqltypes.Row{v}
	}
	var c Vec
	c.FromRows(rows, 0, len(vals))
	return &c
}

// TestCompareMatchesCompareSQL exercises the compare kernel over every
// pairing of corpus columns (typed int, typed float, mixed, strings)
// and every operator, requiring elementwise equality with CompareSQL
// whenever the kernel succeeds, and a scalar error somewhere in the
// batch whenever it fails.
func TestCompareMatchesCompareSQL(t *testing.T) {
	cols := [][]sqltypes.Value{
		{sqltypes.NewInt(1), sqltypes.NewInt(-5), sqltypes.Null, sqltypes.NewInt(7)},
		{sqltypes.NewFloat(1), sqltypes.NewFloat(2.5), sqltypes.NewFloat(math.NaN()), sqltypes.Null},
		{sqltypes.NewInt(3), sqltypes.NewFloat(3), sqltypes.NewString("x"), sqltypes.NewBool(true)},
		{sqltypes.NewString("a"), sqltypes.NewString("b"), sqltypes.NewString(""), sqltypes.Null},
	}
	ops := []sqltypes.CompareOp{sqltypes.CmpEQ, sqltypes.CmpNE, sqltypes.CmpLT, sqltypes.CmpLE, sqltypes.CmpGT, sqltypes.CmpGE}
	for li, lvals := range cols {
		for ri, rvals := range cols {
			l, r := kernelColumn(lvals), kernelColumn(rvals)
			sel := FillSel(nil, l.Len())
			for _, op := range ops {
				var out Vec
				err := Compare(op, l, r, &out, sel)
				if err != nil {
					sawErr := false
					for i := range lvals {
						if _, serr := sqltypes.CompareSQL(op, lvals[i], rvals[i]); serr != nil {
							sawErr = true
						}
					}
					if !sawErr {
						t.Errorf("cols %d/%d op %v: kernel error %v but scalar path clean", li, ri, op, err)
					}
					continue
				}
				for i := range lvals {
					want, serr := sqltypes.CompareSQL(op, lvals[i], rvals[i])
					if serr != nil {
						t.Errorf("cols %d/%d op %v elem %d: kernel ok but scalar errors %v", li, ri, op, i, serr)
						continue
					}
					if got := out.Get(i); got != want {
						t.Errorf("cols %d/%d op %v elem %d: kernel %v, scalar %v", li, ri, op, i, got, want)
					}
				}
			}
		}
	}
}

func TestArithMatchesArith(t *testing.T) {
	cols := [][]sqltypes.Value{
		{sqltypes.NewInt(10), sqltypes.NewInt(-3), sqltypes.Null, sqltypes.NewInt(math.MaxInt64)},
		{sqltypes.NewFloat(2.5), sqltypes.NewFloat(-0.5), sqltypes.NewFloat(math.Inf(1)), sqltypes.Null},
		{sqltypes.NewInt(7), sqltypes.NewFloat(0.25), sqltypes.NewString("x"), sqltypes.NewInt(2)},
		{sqltypes.NewInt(3), sqltypes.NewInt(2), sqltypes.NewInt(5), sqltypes.NewInt(1)}, // divisor-safe ints
		{sqltypes.NewInt(0), sqltypes.NewInt(2), sqltypes.NewInt(5), sqltypes.NewInt(1)}, // has a zero divisor
	}
	ops := []sqltypes.ArithOp{sqltypes.OpAdd, sqltypes.OpSub, sqltypes.OpMul, sqltypes.OpDiv, sqltypes.OpMod}
	for li, lvals := range cols {
		for ri, rvals := range cols {
			l, r := kernelColumn(lvals), kernelColumn(rvals)
			sel := FillSel(nil, l.Len())
			for _, op := range ops {
				var out Vec
				err := Arith(op, l, r, &out, sel)
				if err != nil {
					sawErr := false
					for i := range lvals {
						if _, serr := sqltypes.Arith(op, lvals[i], rvals[i]); serr != nil {
							sawErr = true
						}
					}
					if !sawErr {
						t.Errorf("cols %d/%d op %v: kernel error %v but scalar path clean", li, ri, op, err)
					}
					continue
				}
				for i := range lvals {
					want, serr := sqltypes.Arith(op, lvals[i], rvals[i])
					if serr != nil {
						t.Errorf("cols %d/%d op %v elem %d: kernel ok but scalar errors %v", li, ri, op, i, serr)
						continue
					}
					got := out.Get(i)
					if got != want && !(isNaN(got) && isNaN(want)) {
						t.Errorf("cols %d/%d op %v elem %d: kernel %v, scalar %v", li, ri, op, i, got, want)
					}
				}
			}
		}
	}
}

func TestCursorWindows(t *testing.T) {
	c := NewCursor(2*BatchSize + 5)
	var windows [][2]int
	for {
		lo, hi, ok := c.Next()
		if !ok {
			break
		}
		windows = append(windows, [2]int{lo, hi})
	}
	want := [][2]int{{0, BatchSize}, {BatchSize, 2 * BatchSize}, {2 * BatchSize, 2*BatchSize + 5}}
	if len(windows) != len(want) {
		t.Fatalf("windows = %v", windows)
	}
	for i := range want {
		if windows[i] != want[i] {
			t.Fatalf("window %d = %v, want %v", i, windows[i], want[i])
		}
	}
}

func BenchmarkHashMixInts(b *testing.B) {
	rows := make([]sqltypes.Row, BatchSize)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt(int64(i * 7))}
	}
	var v Vec
	v.FromRows(rows, 0, BatchSize)
	sel := FillSel(nil, BatchSize)
	dst := make([]uint64, BatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashInit(dst, sel)
		v.HashMix(dst, sel)
	}
}

func BenchmarkCompareIntsConst(b *testing.B) {
	rows := make([]sqltypes.Row, BatchSize)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt(int64(i))}
	}
	var l, c, out Vec
	l.FromRows(rows, 0, BatchSize)
	c.SetConst(sqltypes.NewInt(500), BatchSize)
	sel := FillSel(nil, BatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Compare(sqltypes.CmpLT, &l, &c, &out, sel); err != nil {
			b.Fatal(err)
		}
	}
}
