package vec

import (
	"fmt"
	"math"

	"sqloop/internal/sqltypes"
)

// This file holds the data-parallel expression kernels. Each kernel
// writes out[i] for every i in sel and leaves other positions
// untouched; callers must only read selected positions. A kernel that
// cannot reproduce the row path's exact behaviour for some element
// (type error, division by zero) returns an error and the engine
// re-runs the whole batch row-at-a-time, so errors here need not match
// the interpreter's ordering — only successful values must be exact.

func cmpTrue(op sqltypes.CompareOp, c int) bool {
	switch op {
	case sqltypes.CmpEQ:
		return c == 0
	case sqltypes.CmpNE:
		return c != 0
	case sqltypes.CmpLT:
		return c < 0
	case sqltypes.CmpLE:
		return c <= 0
	case sqltypes.CmpGT:
		return c > 0
	case sqltypes.CmpGE:
		return c >= 0
	}
	return false
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// floatAt reads a numeric vector position widened to float64; valid
// for KindInt and KindFloat typed vectors.
func (v *Vec) floatAt(i int) float64 {
	i = v.at(i)
	if v.kind == sqltypes.KindInt {
		return float64(v.Ints[i])
	}
	return v.Floats[i]
}

func isNumericKind(k sqltypes.Kind) bool {
	return k == sqltypes.KindInt || k == sqltypes.KindFloat
}

// Compare fills out (a bool vector with nulls) with l op r for every
// position in sel, matching sqltypes.CompareSQL exactly: NULL operands
// yield NULL, numeric kinds compare with widening.
func Compare(op sqltypes.CompareOp, l, r, out *Vec, sel []int) error {
	out.ResetBools(l.Len())
	lk, lt := l.TypedKind()
	rk, rt := r.TypedKind()

	// Tight loops for null-free typed numeric columns.
	if lt && rt && !l.hasNulls && !r.hasNulls {
		switch {
		case lk == sqltypes.KindInt && rk == sqltypes.KindInt:
			if r.constant && !l.constant {
				c := r.Ints[0]
				switch op {
				case sqltypes.CmpEQ:
					for _, i := range sel {
						out.Bools[i] = l.Ints[i] == c
					}
				case sqltypes.CmpNE:
					for _, i := range sel {
						out.Bools[i] = l.Ints[i] != c
					}
				case sqltypes.CmpLT:
					for _, i := range sel {
						out.Bools[i] = l.Ints[i] < c
					}
				case sqltypes.CmpLE:
					for _, i := range sel {
						out.Bools[i] = l.Ints[i] <= c
					}
				case sqltypes.CmpGT:
					for _, i := range sel {
						out.Bools[i] = l.Ints[i] > c
					}
				case sqltypes.CmpGE:
					for _, i := range sel {
						out.Bools[i] = l.Ints[i] >= c
					}
				default:
					return fmt.Errorf("vec: unknown comparison op %d", op)
				}
				return nil
			}
			for _, i := range sel {
				out.Bools[i] = cmpTrue(op, cmpInt(l.Ints[l.at(i)], r.Ints[r.at(i)]))
			}
			return nil
		case isNumericKind(lk) && isNumericKind(rk):
			for _, i := range sel {
				out.Bools[i] = cmpTrue(op, cmpFloat(l.floatAt(i), r.floatAt(i)))
			}
			return nil
		case lk == sqltypes.KindString && rk == sqltypes.KindString:
			for _, i := range sel {
				a, b := l.Strs[l.at(i)], r.Strs[r.at(i)]
				switch {
				case a < b:
					out.Bools[i] = cmpTrue(op, -1)
				case a > b:
					out.Bools[i] = cmpTrue(op, 1)
				default:
					out.Bools[i] = cmpTrue(op, 0)
				}
			}
			return nil
		}
	}

	// Generic element loop through CompareSQL (handles NULLs, mixed
	// kinds and kind errors identically to the row path).
	for _, i := range sel {
		v, err := sqltypes.CompareSQL(op, l.Get(i), r.Get(i))
		if err != nil {
			return err
		}
		if v.IsNull() {
			out.SetNull(i)
		} else {
			out.Bools[i] = v.IsTrue()
		}
	}
	return nil
}

// Arith fills out with l op r for every position in sel, matching
// sqltypes.Arith exactly: NULL propagation, int arithmetic when both
// sides are ints (with Go wraparound, like the row path), float
// arithmetic otherwise, and division by zero as an error.
func Arith(op sqltypes.ArithOp, l, r, out *Vec, sel []int) error {
	n := l.Len()
	lk, lt := l.TypedKind()
	rk, rt := r.TypedKind()

	if lt && rt && !l.hasNulls && !r.hasNulls && isNumericKind(lk) && isNumericKind(rk) {
		if lk == sqltypes.KindInt && rk == sqltypes.KindInt {
			out.ResetInts(n)
			switch op {
			case sqltypes.OpAdd:
				for _, i := range sel {
					out.Ints[i] = l.Ints[l.at(i)] + r.Ints[r.at(i)]
				}
			case sqltypes.OpSub:
				for _, i := range sel {
					out.Ints[i] = l.Ints[l.at(i)] - r.Ints[r.at(i)]
				}
			case sqltypes.OpMul:
				for _, i := range sel {
					out.Ints[i] = l.Ints[l.at(i)] * r.Ints[r.at(i)]
				}
			case sqltypes.OpDiv:
				for _, i := range sel {
					b := r.Ints[r.at(i)]
					if b == 0 {
						return fmt.Errorf("sqltypes: division by zero")
					}
					out.Ints[i] = l.Ints[l.at(i)] / b
				}
			case sqltypes.OpMod:
				for _, i := range sel {
					b := r.Ints[r.at(i)]
					if b == 0 {
						return fmt.Errorf("sqltypes: division by zero")
					}
					out.Ints[i] = l.Ints[l.at(i)] % b
				}
			default:
				return fmt.Errorf("vec: unknown arithmetic op %d", op)
			}
			return nil
		}
		out.ResetFloats(n)
		switch op {
		case sqltypes.OpAdd:
			for _, i := range sel {
				out.Floats[i] = l.floatAt(i) + r.floatAt(i)
			}
		case sqltypes.OpSub:
			for _, i := range sel {
				out.Floats[i] = l.floatAt(i) - r.floatAt(i)
			}
		case sqltypes.OpMul:
			for _, i := range sel {
				out.Floats[i] = l.floatAt(i) * r.floatAt(i)
			}
		case sqltypes.OpDiv:
			for _, i := range sel {
				b := r.floatAt(i)
				if b == 0 {
					return fmt.Errorf("sqltypes: division by zero")
				}
				out.Floats[i] = l.floatAt(i) / b
			}
		case sqltypes.OpMod:
			for _, i := range sel {
				b := r.floatAt(i)
				if b == 0 {
					return fmt.Errorf("sqltypes: division by zero")
				}
				out.Floats[i] = math.Mod(l.floatAt(i), b)
			}
		default:
			return fmt.Errorf("vec: unknown arithmetic op %d", op)
		}
		return nil
	}

	// Generic element loop through Arith (NULLs, mixed columns, type
	// errors).
	out.ResetAny(n)
	for _, i := range sel {
		v, err := sqltypes.Arith(op, l.Get(i), r.Get(i))
		if err != nil {
			return err
		}
		out.Any[i] = v
	}
	return nil
}
