package pager

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"sqloop/internal/obs"
	"sqloop/internal/sqltypes"
	"sqloop/internal/storage"
)

// Options configures a DB.
type Options struct {
	// BufferPoolPages bounds the shared buffer pool (0 = default 256
	// pages = 2 MiB; floored at 8).
	BufferPoolPages int
	// NoSync skips fsync on commit — crash durability is then bounded
	// by the OS page cache. For benchmarks only.
	NoSync bool
	// Metrics, when set, receives the pager instruments.
	Metrics *obs.Registry
}

// DB is one pager database: a directory of per-store page/WAL file
// pairs sharing a single buffer pool. One engine owns one DB; two live
// DBs must not share a directory.
type DB struct {
	dir  string
	opts Options
	bm   *BufferManager

	mu     sync.Mutex
	stores map[string]*DiskStore
}

// OpenDB opens (creating if needed) the database directory.
func OpenDB(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	bm := newBufferManager(opts.BufferPoolPages)
	if opts.Metrics != nil {
		bm.SetMetrics(opts.Metrics)
	}
	return &DB{dir: dir, opts: opts, bm: bm, stores: make(map[string]*DiskStore)}, nil
}

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }

// Pool returns the shared buffer pool (metrics, tests).
func (db *DB) Pool() *BufferManager { return db.bm }

// SetMetrics attaches (or detaches) the metrics registry.
func (db *DB) SetMetrics(r *obs.Registry) { db.bm.SetMetrics(r) }

// safeName maps a store name to a filesystem-safe stem. Distinct names
// that sanitize identically are disambiguated by an FNV suffix.
func safeName(name string) string {
	var b strings.Builder
	clean := true
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
			clean = false
		default:
			b.WriteByte('_')
			clean = false
		}
	}
	if clean && b.Len() > 0 && b.Len() <= 80 {
		return b.String()
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	stem := b.String()
	if len(stem) > 80 {
		stem = stem[:80]
	}
	return fmt.Sprintf("%s_%08x", stem, h.Sum32())
}

func (db *DB) pagePath(name string) string { return filepath.Join(db.dir, safeName(name)+".pages") }
func (db *DB) walPath(name string) string  { return filepath.Join(db.dir, safeName(name)+".wal") }

// CreateStore returns a fresh empty store named name, destroying any
// on-disk remnants of a previous incarnation (the engine's CREATE
// TABLE: the catalog, not the pager, is the authority on liveness).
func (db *DB) CreateStore(name string) (*DiskStore, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if old, ok := db.stores[name]; ok {
		if err := old.dropLocked(); err != nil {
			return nil, err
		}
	}
	for _, p := range []string{db.pagePath(name), db.walPath(name)} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	return db.openStoreLocked(name)
}

// OpenStore opens the store named name, running redo recovery over any
// existing page file and WAL: the page scan rebuilds the key index
// from committed on-disk state, the WAL replay reapplies every
// complete committed batch past the last checkpoint, and the log is
// truncated back to its last commit boundary, discarding torn trailing
// records.
func (db *DB) OpenStore(name string) (*DiskStore, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if s, ok := db.stores[name]; ok {
		return s, nil
	}
	return db.openStoreLocked(name)
}

func (db *DB) openStoreLocked(name string) (*DiskStore, error) {
	pf, err := openPageFile(db.pagePath(name))
	if err != nil {
		return nil, err
	}
	s := &DiskStore{
		db:    db,
		name:  name,
		pf:    pf,
		index: make(map[sqltypes.Key]rowLoc),
	}
	if err := s.scanPagesIntoIndex(); err != nil {
		pf.close()
		return nil, err
	}
	goodEnd, err := replayWAL(db.walPath(name), s.replay)
	if err != nil {
		pf.close()
		return nil, err
	}
	w, err := openWAL(db.walPath(name), goodEnd, db.opts.NoSync)
	if err != nil {
		pf.close()
		return nil, err
	}
	s.wal = w
	pf.wal = w
	db.stores[name] = s
	return s, nil
}

// Checkpoint flushes and truncates every open store (see
// DiskStore.Checkpoint).
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	stores := make([]*DiskStore, 0, len(db.stores))
	for _, s := range db.stores {
		stores = append(stores, s)
	}
	db.mu.Unlock()
	sort.Slice(stores, func(i, j int) bool { return stores[i].name < stores[j].name })
	var errs []error
	for _, s := range stores {
		errs = append(errs, s.Checkpoint())
	}
	return errors.Join(errs...)
}

// Close commits and closes every open store.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var errs []error
	for name, s := range db.stores {
		errs = append(errs, s.closeFiles(true))
		delete(db.stores, name)
	}
	return errors.Join(errs...)
}

// rowLoc addresses one row: a (page, slot) pair. Slots survive in-page
// compaction, so locations stay valid until the row moves pages.
type rowLoc struct {
	page uint32
	slot uint16
}

// DiskStore is the durable storage.Store: rows live in slotted pages
// reached through the DB's shared buffer pool, every mutation is
// WAL-logged before it touches a page, and an in-memory hash index
// maps keys to row locations. Reads are safe under the engine's shared
// table lock (the buffer pool synchronizes frames internally); writes
// require the exclusive lock, like every other backend.
type DiskStore struct {
	db   *DB
	name string
	pf   *pageFile
	wal  *wal

	index map[sqltypes.Key]rowLoc
	// tail is the page the insert path tries first — the most recently
	// allocated page. Earlier pages' dead space is reclaimed by in-page
	// compaction and by Clear.
	tail    uint32
	pending int
	closed  bool
}

var _ storage.Store = (*DiskStore)(nil)
var _ storage.Committer = (*DiskStore)(nil)
var _ storage.Checkpointer = (*DiskStore)(nil)
var _ storage.Dropper = (*DiskStore)(nil)

// Name identifies the backend.
func (s *DiskStore) Name() string { return "disk" }

// Len returns the number of live rows.
func (s *DiskStore) Len() int { return len(s.index) }

// ioPanic converts an I/O failure on an interface path that cannot
// return an error (Get/Update/Delete/Scan/Clear). Storage I/O errors
// are not recoverable mid-statement; see DESIGN.md.
func (s *DiskStore) ioPanic(op string, err error) {
	panic(fmt.Sprintf("pager: %s on store %q failed: %v", op, s.name, err))
}

// scanPagesIntoIndex builds the key index from the on-disk pages.
// Thanks to the write-ahead rule, pages on disk contain only committed
// rows.
func (s *DiskStore) scanPagesIntoIndex() error {
	for id := uint32(0); id < s.pf.pages; id++ {
		f, err := s.db.bm.pin(s.pf, id, true)
		if err != nil {
			return err
		}
		for i := 0; i < f.data.cellCount(); i++ {
			cell, live := f.data.cell(i)
			if !live {
				continue
			}
			key, _, err := decodeCell(cell)
			if err != nil {
				s.db.bm.unpin(f, false)
				return &CorruptPageError{Path: s.pf.path, PageID: id, Reason: err.Error()}
			}
			s.index[key] = rowLoc{page: id, slot: uint16(i)}
		}
		s.db.bm.unpin(f, false)
	}
	if s.pf.pages > 0 {
		s.tail = s.pf.pages - 1
	}
	return nil
}

// replay applies one recovered WAL record. Replay must be idempotent:
// a dirty page flushed by eviction just before the crash already holds
// the record's effect, so inserts of present keys degrade to updates
// and deletes of absent keys to no-ops.
func (s *DiskStore) replay(r walRec) error {
	switch r.typ {
	case recInsert, recUpdate:
		if _, ok := s.index[r.key]; ok {
			return s.applyUpdate(r.key, r.row, 0)
		}
		return s.applyInsert(r.key, r.row, 0)
	case recDelete:
		if _, ok := s.index[r.key]; ok {
			return s.applyDelete(r.key, 0)
		}
		return nil
	case recClear:
		return s.applyClear()
	default:
		return fmt.Errorf("pager: unexpected %d record in replay batch", r.typ)
	}
}

// Insert adds a new row.
func (s *DiskStore) Insert(key sqltypes.Key, row sqltypes.Row) error {
	if _, ok := s.index[key]; ok {
		return storage.ErrDuplicateKey
	}
	if len(encodeCell(key, row)) > MaxCell {
		return fmt.Errorf("pager: row for key %v exceeds page capacity", key.Value())
	}
	lsn, err := s.wal.append(walRec{typ: recInsert, key: key, row: row})
	if err != nil {
		return err
	}
	if err := s.applyInsert(key, row, lsn); err != nil {
		return err
	}
	s.noteOp()
	return nil
}

// Get returns the row for key.
func (s *DiskStore) Get(key sqltypes.Key) (sqltypes.Row, bool) {
	loc, ok := s.index[key]
	if !ok {
		return nil, false
	}
	f, err := s.db.bm.pin(s.pf, loc.page, true)
	if err != nil {
		s.ioPanic("Get", err)
	}
	cell, live := f.data.cell(int(loc.slot))
	if !live {
		s.db.bm.unpin(f, false)
		s.ioPanic("Get", fmt.Errorf("index points at dead slot %d of page %d", loc.slot, loc.page))
	}
	_, row, err := decodeCell(cell)
	s.db.bm.unpin(f, false)
	if err != nil {
		s.ioPanic("Get", err)
	}
	return row, true
}

// Update replaces the row for key, reporting whether it existed.
func (s *DiskStore) Update(key sqltypes.Key, row sqltypes.Row) bool {
	if _, ok := s.index[key]; !ok {
		return false
	}
	if len(encodeCell(key, row)) > MaxCell {
		s.ioPanic("Update", fmt.Errorf("row for key %v exceeds page capacity", key.Value()))
	}
	lsn, err := s.wal.append(walRec{typ: recUpdate, key: key, row: row})
	if err != nil {
		s.ioPanic("Update", err)
	}
	if err := s.applyUpdate(key, row, lsn); err != nil {
		s.ioPanic("Update", err)
	}
	s.noteOp()
	return true
}

// Delete removes the row for key, reporting whether it existed.
func (s *DiskStore) Delete(key sqltypes.Key) bool {
	if _, ok := s.index[key]; !ok {
		return false
	}
	lsn, err := s.wal.append(walRec{typ: recDelete, key: key})
	if err != nil {
		s.ioPanic("Delete", err)
	}
	if err := s.applyDelete(key, lsn); err != nil {
		s.ioPanic("Delete", err)
	}
	s.noteOp()
	return true
}

// Scan visits every live row in page order until fn returns false.
func (s *DiskStore) Scan(fn func(key sqltypes.Key, row sqltypes.Row) bool) {
	for id := uint32(0); id < s.pf.pages; id++ {
		f, err := s.db.bm.pin(s.pf, id, true)
		if err != nil {
			s.ioPanic("Scan", err)
		}
		for i := 0; i < f.data.cellCount(); i++ {
			cell, live := f.data.cell(i)
			if !live {
				continue
			}
			key, row, err := decodeCell(cell)
			if err != nil {
				s.db.bm.unpin(f, false)
				s.ioPanic("Scan", err)
			}
			if !fn(key, row) {
				s.db.bm.unpin(f, false)
				return
			}
		}
		s.db.bm.unpin(f, false)
	}
}

// Clear removes all rows. The sequence is crash-safe at every point: a
// committed clear record first (recovery then replays the clear), then
// the physical truncation, then the WAL reset.
func (s *DiskStore) Clear() {
	if _, err := s.wal.append(walRec{typ: recClear}); err != nil {
		s.ioPanic("Clear", err)
	}
	if err := s.wal.commit(); err != nil {
		s.ioPanic("Clear", err)
	}
	if err := s.applyClear(); err != nil {
		s.ioPanic("Clear", err)
	}
	if err := s.pf.sync(); err != nil {
		s.ioPanic("Clear", err)
	}
	if err := s.wal.reset(); err != nil {
		s.ioPanic("Clear", err)
	}
	s.pending = 0
}

// Commit makes every operation so far durable (WAL commit + fsync).
// The engine calls this at statement boundaries for write-locked
// tables.
func (s *DiskStore) Commit() error {
	s.pending = 0
	return s.wal.commit()
}

// WALSize reports the store's current write-ahead-log size in bytes
// (the logical end offset; resets to the header size on checkpoint).
// The engine's background checkpointer polls it against its threshold.
func (s *DiskStore) WALSize() int64 {
	s.wal.mu.Lock()
	defer s.wal.mu.Unlock()
	return s.wal.size
}

// Checkpoint is the WAL↔checkpoint truncation contract: commit, flush
// every dirty page, fsync the page file, then reset the log — after a
// checkpoint, recovery has nothing to replay.
func (s *DiskStore) Checkpoint() error {
	if err := s.Commit(); err != nil {
		return err
	}
	if err := s.db.bm.flushFile(s.pf); err != nil {
		return err
	}
	if err := s.pf.sync(); err != nil {
		return err
	}
	return s.wal.reset()
}

// Drop closes the store and deletes its files (DROP TABLE).
func (s *DiskStore) Drop() error {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	return s.dropLocked()
}

func (s *DiskStore) dropLocked() error {
	if s.closed {
		return nil
	}
	err := s.closeFiles(false)
	for _, p := range []string{s.pf.path, s.wal.path} {
		if rmErr := os.Remove(p); rmErr != nil && !os.IsNotExist(rmErr) && err == nil {
			err = rmErr
		}
	}
	delete(s.db.stores, s.name)
	return err
}

// Close commits, flushes and closes the store's files; the store
// remains reopenable via OpenStore.
func (s *DiskStore) Close() error {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.closeFiles(true)
	delete(s.db.stores, s.name)
	return err
}

func (s *DiskStore) closeFiles(flush bool) error {
	s.closed = true
	var errs []error
	if flush {
		errs = append(errs, s.wal.commit(), s.db.bm.flushFile(s.pf), s.pf.sync())
	}
	s.db.bm.invalidateFile(s.pf)
	errs = append(errs, s.wal.close(), s.pf.close())
	return errors.Join(errs...)
}

// groupCommitOps bounds how much uncommitted work may accumulate when
// no caller ever commits explicitly (ad-hoc Store users): every Nth
// operation forces a commit, bounding both replay time and the window
// a crash can lose.
const groupCommitOps = 4096

func (s *DiskStore) noteOp() {
	s.pending++
	if s.pending >= groupCommitOps {
		if err := s.Commit(); err != nil {
			s.ioPanic("group commit", err)
		}
	}
}

// applyInsert places the encoded cell on a page (tail first, then a
// fresh page) and records the location. lsn stamps the page header.
func (s *DiskStore) applyInsert(key sqltypes.Key, row sqltypes.Row, lsn uint64) error {
	cell := encodeCell(key, row)
	if len(cell) > MaxCell {
		return fmt.Errorf("pager: row for key %v exceeds page capacity", key.Value())
	}
	if s.pf.pages > 0 {
		f, err := s.db.bm.pin(s.pf, s.tail, true)
		if err != nil {
			return err
		}
		if slot, ok := f.data.addCell(cell); ok {
			f.data.setLSN(lsn)
			s.db.bm.unpin(f, true)
			s.index[key] = rowLoc{page: s.tail, slot: uint16(slot)}
			return nil
		}
		s.db.bm.unpin(f, false)
	}
	id := s.pf.allocate()
	f, err := s.db.bm.pin(s.pf, id, false)
	if err != nil {
		return err
	}
	slot, ok := f.data.addCell(cell)
	if !ok {
		s.db.bm.unpin(f, false)
		return fmt.Errorf("pager: cell of %d bytes does not fit an empty page", len(cell))
	}
	f.data.setLSN(lsn)
	s.db.bm.unpin(f, true)
	s.tail = id
	s.index[key] = rowLoc{page: id, slot: uint16(slot)}
	return nil
}

// applyUpdate rewrites the row in place when it fits, otherwise moves
// it (same page first — compaction may make room — then the insert
// path).
func (s *DiskStore) applyUpdate(key sqltypes.Key, row sqltypes.Row, lsn uint64) error {
	loc := s.index[key]
	cell := encodeCell(key, row)
	f, err := s.db.bm.pin(s.pf, loc.page, true)
	if err != nil {
		return err
	}
	if f.data.updateCellInPlace(int(loc.slot), cell) {
		f.data.setLSN(lsn)
		s.db.bm.unpin(f, true)
		return nil
	}
	f.data.delCell(int(loc.slot))
	if slot, ok := f.data.addCell(cell); ok {
		f.data.setLSN(lsn)
		s.db.bm.unpin(f, true)
		s.index[key] = rowLoc{page: loc.page, slot: uint16(slot)}
		return nil
	}
	f.data.setLSN(lsn)
	s.db.bm.unpin(f, true)
	delete(s.index, key)
	return s.applyInsert(key, row, lsn)
}

func (s *DiskStore) applyDelete(key sqltypes.Key, lsn uint64) error {
	loc := s.index[key]
	f, err := s.db.bm.pin(s.pf, loc.page, true)
	if err != nil {
		return err
	}
	f.data.delCell(int(loc.slot))
	f.data.setLSN(lsn)
	s.db.bm.unpin(f, true)
	delete(s.index, key)
	return nil
}

func (s *DiskStore) applyClear() error {
	s.db.bm.invalidateFile(s.pf)
	if err := s.pf.truncate(); err != nil {
		return err
	}
	s.index = make(map[sqltypes.Key]rowLoc)
	s.tail = 0
	return nil
}
