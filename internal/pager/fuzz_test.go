package pager

import (
	"bytes"
	"testing"

	"sqloop/internal/sqltypes"
)

// FuzzWALRecordRoundTrip fuzzes both directions of the record codec:
// arbitrary bytes must decode without panicking (and re-encode to the
// same payload when they do decode), and records built from fuzzed
// values must round-trip exactly. The cell codec is exercised through
// the insert record path.
func FuzzWALRecordRoundTrip(f *testing.F) {
	f.Add([]byte{byte(recCommit)}, int64(0), 0.0, "", true)
	f.Add(encodeRecPayload(walRec{typ: recInsert, key: sqltypes.NewInt(7).MapKey(),
		row: sqltypes.Row{sqltypes.NewString("x"), sqltypes.Null}}), int64(7), 1.5, "x", false)
	f.Add(encodeRecPayload(walRec{typ: recDelete, key: sqltypes.NewString("k").MapKey()}),
		int64(-1), -2.25, "k", true)
	f.Add([]byte{byte(recInsert), tagStr, 0xFF, 0xFF, 0xFF}, int64(1), 0.5, "torn", false)

	f.Fuzz(func(t *testing.T, raw []byte, i int64, fl float64, s string, b bool) {
		// Direction 1: arbitrary bytes. Decode must never panic; a
		// successful decode must re-encode to an equivalent payload.
		if rec, err := decodeRecPayload(raw); err == nil {
			re := encodeRecPayload(rec)
			rec2, err := decodeRecPayload(re)
			if err != nil {
				t.Fatalf("re-encoded payload failed to decode: %v", err)
			}
			// Byte-level comparison sidesteps NaN keys, for which struct
			// equality is false even on identical bit patterns.
			if rec2.typ != rec.typ || !bytes.Equal(re, encodeRecPayload(rec2)) {
				t.Fatalf("unstable round trip: %+v vs %+v", rec, rec2)
			}
		}

		// Direction 2: structured values round-trip exactly.
		row := sqltypes.Row{
			sqltypes.NewInt(i),
			sqltypes.NewFloat(fl),
			sqltypes.NewString(s),
			sqltypes.NewBool(b),
			sqltypes.Null,
		}
		for _, typ := range []recType{recInsert, recUpdate} {
			want := walRec{typ: typ, key: sqltypes.NewInt(i).MapKey(), row: row}
			payload := encodeRecPayload(want)
			got, err := decodeRecPayload(payload)
			if err != nil {
				t.Fatalf("%d: decode: %v", typ, err)
			}
			if got.typ != want.typ || got.key != want.key || len(got.row) != len(want.row) {
				t.Fatalf("%d: %+v -> %+v", typ, want, got)
			}
			for j := range want.row {
				g, w := got.row[j], want.row[j]
				if g.Kind() != w.Kind() || sqltypes.CompareTotal(g, w) != 0 {
					t.Fatalf("%d: row[%d] %v != %v", typ, j, g, w)
				}
			}
			if !bytes.Equal(payload, encodeRecPayload(got)) {
				t.Fatalf("%d: encoding not canonical", typ)
			}
		}
		del := walRec{typ: recDelete, key: sqltypes.NewString(s).MapKey()}
		got, err := decodeRecPayload(encodeRecPayload(del))
		if err != nil || got.key != del.key {
			t.Fatalf("delete round trip: %+v, %v", got, err)
		}
	})
}
