package pager

import (
	"bytes"
	"fmt"
	"testing"
)

func newTestPage() page {
	p := make(page, PageSize)
	p.init(3)
	return p
}

func TestPageInit(t *testing.T) {
	p := newTestPage()
	if p.pageID() != 3 {
		t.Fatalf("pageID = %d", p.pageID())
	}
	if p.cellCount() != 0 || p.liveCells() != 0 {
		t.Fatalf("fresh page has cells: %d/%d", p.cellCount(), p.liveCells())
	}
	if p.freeHi() != PageSize {
		t.Fatalf("freeHi = %d", p.freeHi())
	}
	if p.freeSpace() != PageSize-pageHdrSize {
		t.Fatalf("freeSpace = %d", p.freeSpace())
	}
}

func TestPageAddGetDelete(t *testing.T) {
	p := newTestPage()
	var slots []int
	for i := 0; i < 10; i++ {
		data := []byte(fmt.Sprintf("cell-%02d", i))
		slot, ok := p.addCell(data)
		if !ok {
			t.Fatalf("addCell(%d) did not fit", i)
		}
		slots = append(slots, slot)
	}
	if p.liveCells() != 10 {
		t.Fatalf("liveCells = %d", p.liveCells())
	}
	for i, slot := range slots {
		cell, live := p.cell(slot)
		if !live || string(cell) != fmt.Sprintf("cell-%02d", i) {
			t.Fatalf("cell(%d) = %q, %v", slot, cell, live)
		}
	}
	p.delCell(slots[4])
	if _, live := p.cell(slots[4]); live {
		t.Fatal("deleted cell still live")
	}
	if p.liveCells() != 9 {
		t.Fatalf("liveCells after delete = %d", p.liveCells())
	}
	// The dead slot is reused before the array grows.
	slot, ok := p.addCell([]byte("reborn"))
	if !ok || slot != slots[4] {
		t.Fatalf("addCell after delete = slot %d, want %d", slot, slots[4])
	}
}

func TestPageFillToCapacity(t *testing.T) {
	p := newTestPage()
	data := bytes.Repeat([]byte{0xAB}, 100)
	n := 0
	for {
		if _, ok := p.addCell(data); !ok {
			break
		}
		n++
	}
	want := (PageSize - pageHdrSize) / (100 + slotSize)
	if n != want {
		t.Fatalf("page held %d 100-byte cells, want %d", n, want)
	}
	// A max-size cell exactly fills an empty page.
	p2 := newTestPage()
	if _, ok := p2.addCell(make([]byte, MaxCell)); !ok {
		t.Fatal("MaxCell-sized cell did not fit an empty page")
	}
	if p2.freeSpace() != 0 {
		t.Fatalf("freeSpace after MaxCell = %d", p2.freeSpace())
	}
	if _, ok := p2.addCell([]byte{1}); ok {
		t.Fatal("cell fit a full page")
	}
}

func TestPageCompactionReclaimsDeadSpace(t *testing.T) {
	p := newTestPage()
	big := bytes.Repeat([]byte{1}, 1000)
	var slots []int
	for {
		slot, ok := p.addCell(big)
		if !ok {
			break
		}
		slots = append(slots, slot)
	}
	// Kill every other cell, then insert something that only fits after
	// compaction.
	for i := 0; i < len(slots); i += 2 {
		p.delCell(slots[i])
	}
	free, dead := p.freeSpace(), p.deadSpace()
	if dead < 1000 {
		t.Fatalf("deadSpace = %d after deletes", dead)
	}
	huge := bytes.Repeat([]byte{2}, free+500)
	slot, ok := p.addCell(huge)
	if !ok {
		t.Fatalf("addCell(%d bytes) failed with free=%d dead=%d", len(huge), free, dead)
	}
	if cell, live := p.cell(slot); !live || !bytes.Equal(cell, huge) {
		t.Fatal("compacted-in cell corrupt")
	}
	// Survivors kept their slot indices and payloads.
	for i := 1; i < len(slots); i += 2 {
		cell, live := p.cell(slots[i])
		if !live || !bytes.Equal(cell, big) {
			t.Fatalf("survivor slot %d corrupt after compaction", slots[i])
		}
	}
}

func TestPageUpdateInPlace(t *testing.T) {
	p := newTestPage()
	slot, _ := p.addCell([]byte("0123456789"))
	if !p.updateCellInPlace(slot, []byte("short")) {
		t.Fatal("shrinking update rejected")
	}
	cell, _ := p.cell(slot)
	if string(cell) != "short" {
		t.Fatalf("cell = %q", cell)
	}
	if p.updateCellInPlace(slot, []byte("longer than the old payload")) {
		t.Fatal("growing update accepted in place")
	}
	if p.updateCellInPlace(slot, []byte("12345")) != true {
		t.Fatal("equal-size update rejected")
	}
}

func TestPageCompactTrimsTrailingDeadSlots(t *testing.T) {
	p := newTestPage()
	var slots []int
	for i := 0; i < 5; i++ {
		s, _ := p.addCell([]byte("x"))
		slots = append(slots, s)
	}
	p.delCell(slots[3])
	p.delCell(slots[4])
	p.compact()
	if p.cellCount() != 3 {
		t.Fatalf("cellCount after trim = %d, want 3", p.cellCount())
	}
	for i := 0; i < 3; i++ {
		if _, live := p.cell(slots[i]); !live {
			t.Fatalf("live slot %d lost in compaction", i)
		}
	}
}
