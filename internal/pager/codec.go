package pager

import (
	"encoding/binary"
	"fmt"
	"math"

	"sqloop/internal/sqltypes"
)

// Value codec: one tag byte followed by the payload. Integers use
// zigzag varints, floats 8-byte big-endian IEEE 754, strings a
// uvarint-prefixed byte run. The same encoding serves page cells and
// WAL record bodies, so FuzzWALRecordRoundTrip covers both.
const (
	tagNull  byte = 0
	tagInt   byte = 1
	tagFloat byte = 2
	tagStr   byte = 3
	tagTrue  byte = 4
	tagFalse byte = 5
)

func appendValue(b []byte, v sqltypes.Value) []byte {
	switch v.Kind() {
	case sqltypes.KindNull:
		return append(b, tagNull)
	case sqltypes.KindInt:
		b = append(b, tagInt)
		return binary.AppendVarint(b, v.Int())
	case sqltypes.KindFloat:
		b = append(b, tagFloat)
		return binary.BigEndian.AppendUint64(b, math.Float64bits(v.Float()))
	case sqltypes.KindString:
		b = append(b, tagStr)
		b = binary.AppendUvarint(b, uint64(len(v.Str())))
		return append(b, v.Str()...)
	case sqltypes.KindBool:
		if v.Bool() {
			return append(b, tagTrue)
		}
		return append(b, tagFalse)
	default:
		// Unreachable: sqltypes has no further kinds.
		return append(b, tagNull)
	}
}

func decodeValue(b []byte) (sqltypes.Value, int, error) {
	if len(b) == 0 {
		return sqltypes.Null, 0, fmt.Errorf("pager: truncated value")
	}
	switch b[0] {
	case tagNull:
		return sqltypes.Null, 1, nil
	case tagInt:
		v, n := binary.Varint(b[1:])
		if n <= 0 {
			return sqltypes.Null, 0, fmt.Errorf("pager: bad varint")
		}
		return sqltypes.NewInt(v), 1 + n, nil
	case tagFloat:
		if len(b) < 9 {
			return sqltypes.Null, 0, fmt.Errorf("pager: truncated float")
		}
		return sqltypes.NewFloat(math.Float64frombits(binary.BigEndian.Uint64(b[1:]))), 9, nil
	case tagStr:
		l, n := binary.Uvarint(b[1:])
		if n <= 0 || l > uint64(len(b)-1-n) {
			return sqltypes.Null, 0, fmt.Errorf("pager: bad string length")
		}
		start := 1 + n
		return sqltypes.NewString(string(b[start : start+int(l)])), start + int(l), nil
	case tagTrue:
		return sqltypes.NewBool(true), 1, nil
	case tagFalse:
		return sqltypes.NewBool(false), 1, nil
	default:
		return sqltypes.Null, 0, fmt.Errorf("pager: unknown value tag %d", b[0])
	}
}

// encodeCell serializes one (key, row) pair: the key value, a uvarint
// column count, then each column value.
func encodeCell(key sqltypes.Key, row sqltypes.Row) []byte {
	b := make([]byte, 0, 16+8*len(row))
	b = appendValue(b, key.Value())
	b = binary.AppendUvarint(b, uint64(len(row)))
	for _, v := range row {
		b = appendValue(b, v)
	}
	return b
}

// maxRowColumns bounds the decoded column count; it exists only to
// reject corrupt cells before allocating.
const maxRowColumns = 1 << 16

func decodeCell(b []byte) (sqltypes.Key, sqltypes.Row, error) {
	kv, n, err := decodeValue(b)
	if err != nil {
		return sqltypes.Key{}, nil, err
	}
	b = b[n:]
	ncols, n := binary.Uvarint(b)
	if n <= 0 || ncols > maxRowColumns {
		return sqltypes.Key{}, nil, fmt.Errorf("pager: bad column count")
	}
	b = b[n:]
	var row sqltypes.Row
	if ncols > 0 {
		row = make(sqltypes.Row, 0, ncols)
		for i := uint64(0); i < ncols; i++ {
			v, n, err := decodeValue(b)
			if err != nil {
				return sqltypes.Key{}, nil, err
			}
			row = append(row, v)
			b = b[n:]
		}
	}
	if len(b) != 0 {
		return sqltypes.Key{}, nil, fmt.Errorf("pager: %d trailing bytes after cell", len(b))
	}
	return kv.MapKey(), row, nil
}
