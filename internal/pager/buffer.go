package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"sqloop/internal/obs"
)

// pageFile is one store's data file: a headerless array of CRC-stamped
// pages. The logical page count can exceed the file size — freshly
// allocated pages live only in the buffer pool until first flush.
type pageFile struct {
	f     *os.File
	path  string
	pages uint32
	// wal is the owning store's log: the buffer pool commits it before
	// writing one of this file's dirty pages (write-ahead rule), so
	// on-disk pages only ever contain committed data.
	wal *wal
}

func openPageFile(path string) (*pageFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if rem := size % PageSize; rem != 0 {
		// A torn file extension; drop the partial page. Its rows, if
		// any, are still in the WAL.
		size -= rem
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &pageFile{f: f, path: path, pages: uint32(size / PageSize)}, nil
}

// readPage loads page id into p, verifying the checksum and the page's
// self-identification.
func (pf *pageFile) readPage(id uint32, p page) error {
	if _, err := pf.f.ReadAt(p, int64(id)*PageSize); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// Allocated but never flushed: logically an empty page.
			p.init(id)
			return nil
		}
		return err
	}
	if crc32.ChecksumIEEE(p[4:]) != binary.LittleEndian.Uint32(p[offCRC:]) {
		return &CorruptPageError{Path: pf.path, PageID: id, Reason: "checksum mismatch"}
	}
	if p.pageID() != id {
		return &CorruptPageError{Path: pf.path, PageID: id, Reason: fmt.Sprintf("page identifies as %d", p.pageID())}
	}
	return nil
}

// writePage stamps the checksum and writes page id.
func (pf *pageFile) writePage(id uint32, p page) error {
	binary.LittleEndian.PutUint32(p[offCRC:], crc32.ChecksumIEEE(p[4:]))
	_, err := pf.f.WriteAt(p, int64(id)*PageSize)
	return err
}

// allocate reserves the next page ID. The page exists only in the
// buffer pool until flushed.
func (pf *pageFile) allocate() uint32 {
	id := pf.pages
	pf.pages++
	return id
}

// truncate discards every page (Clear).
func (pf *pageFile) truncate() error {
	if err := pf.f.Truncate(0); err != nil {
		return err
	}
	pf.pages = 0
	return nil
}

func (pf *pageFile) sync() error  { return pf.f.Sync() }
func (pf *pageFile) close() error { return pf.f.Close() }

// frameKey identifies a cached page.
type frameKey struct {
	file *pageFile
	id   uint32
}

// frame is one buffer-pool slot.
type frame struct {
	key   frameKey
	data  page
	pin   int
	ref   bool // clock reference bit
	dirty bool
	valid bool
}

// BufferManager is the shared buffer pool: a fixed set of page frames
// with pin/unpin, dirty tracking and clock (second-chance) eviction.
// One BufferManager serves every store of a DB, so Config's
// BufferPoolPages bounds the pager's total memory regardless of table
// count. Safe for concurrent use.
type BufferManager struct {
	mu     sync.Mutex
	frames []frame
	table  map[frameKey]int
	hand   int

	hits, misses atomic.Int64

	// Cached instruments (nil until SetMetrics): the pin path is too
	// hot for registry lookups.
	reads, writes, evictions *obs.Counter
	hitRate                  *obs.Gauge
}

// minPoolPages is the floor on pool size: scans and moves pin two
// pages at once, and a pool too small to hold a working set degrades
// to I/O-per-access but must never deadlock.
const minPoolPages = 8

// newBufferManager builds a pool of n frames (floored at minPoolPages;
// 0 selects the default of 256 = 2 MiB).
func newBufferManager(n int) *BufferManager {
	if n == 0 {
		n = 256
	}
	if n < minPoolPages {
		n = minPoolPages
	}
	return &BufferManager{
		frames: make([]frame, n),
		table:  make(map[frameKey]int, n),
	}
}

// SetMetrics attaches a registry: sqloop_pager_page_reads/writes/
// evictions counters and the sqloop_pager_hit_rate_percent gauge.
func (bm *BufferManager) SetMetrics(r *obs.Registry) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	if r == nil {
		bm.reads, bm.writes, bm.evictions, bm.hitRate = nil, nil, nil, nil
		return
	}
	bm.reads = r.Counter("sqloop_pager_page_reads")
	bm.writes = r.Counter("sqloop_pager_page_writes")
	bm.evictions = r.Counter("sqloop_pager_evictions")
	bm.hitRate = r.Gauge("sqloop_pager_hit_rate_percent")
}

// pin fetches page id of pf into a frame and pins it. With load=false
// the page is freshly formatted instead of read — the allocation path.
// The caller must unpin exactly once.
func (bm *BufferManager) pin(pf *pageFile, id uint32, load bool) (*frame, error) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	k := frameKey{file: pf, id: id}
	if i, ok := bm.table[k]; ok {
		f := &bm.frames[i]
		f.pin++
		f.ref = true
		bm.hits.Add(1)
		bm.noteHitRate()
		return f, nil
	}
	bm.misses.Add(1)
	i, err := bm.victimLocked()
	if err != nil {
		return nil, err
	}
	f := &bm.frames[i]
	if f.valid {
		if f.dirty {
			if err := bm.flushFrameLocked(f); err != nil {
				return nil, err
			}
		}
		delete(bm.table, f.key)
		if bm.evictions != nil {
			bm.evictions.Inc()
		}
	}
	if f.data == nil {
		f.data = make(page, PageSize)
	}
	if load {
		if err := pf.readPage(id, f.data); err != nil {
			f.valid = false
			return nil, err
		}
		if bm.reads != nil {
			bm.reads.Inc()
		}
	} else {
		f.data.init(id)
	}
	f.key = k
	f.pin = 1
	f.ref = true
	f.dirty = false
	f.valid = true
	bm.table[k] = i
	bm.noteHitRate()
	return f, nil
}

// unpin releases one pin, recording whether the caller modified the
// page.
func (bm *BufferManager) unpin(f *frame, dirty bool) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	f.pin--
	if dirty {
		f.dirty = true
	}
}

// victimLocked runs the clock hand: skip pinned frames, clear one
// reference bit per lap, take the first unpinned unreferenced frame.
func (bm *BufferManager) victimLocked() (int, error) {
	for scanned := 0; scanned < 2*len(bm.frames); scanned++ {
		i := bm.hand
		bm.hand = (bm.hand + 1) % len(bm.frames)
		f := &bm.frames[i]
		if f.pin > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		return i, nil
	}
	return 0, fmt.Errorf("pager: buffer pool exhausted (%d pages, all pinned)", len(bm.frames))
}

// flushFrameLocked writes one dirty frame. The WAL is committed first:
// a page on disk must never contain operations the log has not made
// durable, or recovery could surface uncommitted rows.
func (bm *BufferManager) flushFrameLocked(f *frame) error {
	if f.key.file.wal != nil {
		if err := f.key.file.wal.commit(); err != nil {
			return err
		}
	}
	if err := f.key.file.writePage(f.key.id, f.data); err != nil {
		return err
	}
	f.dirty = false
	if bm.writes != nil {
		bm.writes.Inc()
	}
	return nil
}

// flushFile writes every dirty frame of pf (checkpoint/close).
func (bm *BufferManager) flushFile(pf *pageFile) error {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	for i := range bm.frames {
		f := &bm.frames[i]
		if f.valid && f.key.file == pf && f.dirty {
			if err := bm.flushFrameLocked(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// invalidateFile drops every frame of pf without flushing (Clear/Drop).
func (bm *BufferManager) invalidateFile(pf *pageFile) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	for i := range bm.frames {
		f := &bm.frames[i]
		if f.valid && f.key.file == pf {
			delete(bm.table, f.key)
			f.valid = false
			f.dirty = false
			f.ref = false
		}
	}
}

// noteHitRate publishes the cumulative hit rate as a percentage.
func (bm *BufferManager) noteHitRate() {
	if bm.hitRate == nil {
		return
	}
	h, m := bm.hits.Load(), bm.misses.Load()
	if h+m > 0 {
		bm.hitRate.Set(h * 100 / (h + m))
	}
}

// Stats reports cumulative pin hits and misses (tests, bench).
func (bm *BufferManager) Stats() (hits, misses int64) {
	return bm.hits.Load(), bm.misses.Load()
}
