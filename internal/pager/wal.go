package pager

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"sqloop/internal/sqltypes"
)

// Write-ahead log. The file begins with an 8-byte magic; records are
// length-prefixed and CRC'd:
//
//	[0:4)  payload length (little endian uint32)
//	[4:8)  crc32 (IEEE) of the payload
//	[8:..) payload: [type byte][body]
//
// Record types: insert/update carry a cell (key + row), delete carries
// a key, clear/commit/checkpoint carry nothing. A record's LSN is the
// file offset of its length prefix. Appends are buffered; Commit
// appends a commit record, flushes and fsyncs — the durability point.
// Redo recovery replays complete committed batches from the head and
// discards torn or uncommitted trailing records by truncating the file
// back to the last commit boundary.
const walMagic = "SQLPWAL1"

type recType byte

// WAL record types.
const (
	recInsert     recType = 1
	recUpdate     recType = 2
	recDelete     recType = 3
	recClear      recType = 4
	recCommit     recType = 5
	recCheckpoint recType = 6
)

// maxWALRecord bounds a record payload; longer length prefixes are
// treated as corruption (a cell cannot exceed a page).
const maxWALRecord = 1 << 20

// walRec is one decoded record.
type walRec struct {
	typ recType
	key sqltypes.Key
	row sqltypes.Row
}

// encodeRecPayload renders the payload (type byte + body) of a record.
func encodeRecPayload(r walRec) []byte {
	switch r.typ {
	case recInsert, recUpdate:
		return append([]byte{byte(r.typ)}, encodeCell(r.key, r.row)...)
	case recDelete:
		return appendValue([]byte{byte(r.typ)}, r.key.Value())
	default:
		return []byte{byte(r.typ)}
	}
}

// decodeRecPayload parses a payload produced by encodeRecPayload.
func decodeRecPayload(b []byte) (walRec, error) {
	if len(b) == 0 {
		return walRec{}, fmt.Errorf("pager: empty WAL record")
	}
	r := walRec{typ: recType(b[0])}
	body := b[1:]
	switch r.typ {
	case recInsert, recUpdate:
		key, row, err := decodeCell(body)
		if err != nil {
			return walRec{}, err
		}
		r.key, r.row = key, row
	case recDelete:
		v, n, err := decodeValue(body)
		if err != nil {
			return walRec{}, err
		}
		if n != len(body) {
			return walRec{}, fmt.Errorf("pager: %d trailing bytes after delete record", len(body)-n)
		}
		r.key = v.MapKey()
	case recClear, recCommit, recCheckpoint:
		if len(body) != 0 {
			return walRec{}, fmt.Errorf("pager: %d unexpected body bytes in %d record", len(body), r.typ)
		}
	default:
		return walRec{}, fmt.Errorf("pager: unknown WAL record type %d", r.typ)
	}
	return r, nil
}

// appendRecFrame appends the framed record (length, crc, payload).
func appendRecFrame(b []byte, r walRec) []byte {
	payload := encodeRecPayload(r)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

// wal is the append side of one store's log. Safe for concurrent use:
// the buffer pool commits a victim page's log from whatever goroutine
// triggers the eviction.
type wal struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	path    string
	size    int64 // logical end offset; the next record's LSN
	pending bool  // records appended since the last commit record
	noSync  bool
}

// openWAL opens (creating if needed) the log at path, positioned to
// append at offset size. A fresh file gets the magic header.
func openWAL(path string, size int64, noSync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	w := &wal{f: f, path: path, noSync: noSync}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.Write([]byte(walMagic)); err != nil {
			f.Close()
			return nil, err
		}
		size = int64(len(walMagic))
	} else {
		// Recovery decided the good prefix; drop everything after it.
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w.size = size
	w.w = bufio.NewWriter(f)
	return w, nil
}

// append logs one record, returning its LSN. Not durable until commit.
func (w *wal) append(r walRec) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(r)
}

func (w *wal) appendLocked(r walRec) (uint64, error) {
	lsn := uint64(w.size)
	frame := appendRecFrame(nil, r)
	if _, err := w.w.Write(frame); err != nil {
		return 0, err
	}
	w.size += int64(len(frame))
	if r.typ != recCommit && r.typ != recCheckpoint {
		w.pending = true
	}
	return lsn, nil
}

// commit makes everything logged so far durable: a commit record, a
// buffer flush and (unless noSync) an fsync. No-op when nothing is
// pending.
func (w *wal) commit() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.pending {
		return nil
	}
	if _, err := w.appendLocked(walRec{typ: recCommit}); err != nil {
		return err
	}
	w.pending = false
	return w.flushLocked()
}

func (w *wal) flushLocked() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.noSync {
		return nil
	}
	return w.f.Sync()
}

// reset truncates the log back to its header and stamps a checkpoint
// record — the WAL half of the checkpoint contract. The caller must
// have made the page file durable first.
func (w *wal) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(len(walMagic)), io.SeekStart); err != nil {
		return err
	}
	w.size = int64(len(walMagic))
	w.w.Reset(w.f)
	w.pending = false
	if _, err := w.appendLocked(walRec{typ: recCheckpoint}); err != nil {
		return err
	}
	return w.flushLocked()
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// replayWAL reads the log at path and calls apply for every record of
// every complete committed batch, in order. It returns the offset just
// past the last commit (or checkpoint) record — the good prefix. Torn
// trailing records (bad magic aside — that is an error), short frames,
// CRC mismatches, unparseable payloads and uncommitted batches are all
// discarded silently: they are exactly what a crash leaves behind.
func replayWAL(path string, apply func(walRec) error) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != string(walMagic) {
		return 0, fmt.Errorf("pager: %s is not a WAL file", path)
	}
	off := int64(len(walMagic))
	goodEnd := off
	var batch []walRec
	for {
		rest := data[off:]
		if len(rest) < 8 {
			break
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		if length == 0 || length > maxWALRecord || uint64(len(rest)-8) < uint64(length) {
			break
		}
		payload := rest[8 : 8+length]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			break
		}
		rec, err := decodeRecPayload(payload)
		if err != nil {
			break
		}
		off += int64(8 + length)
		switch rec.typ {
		case recCommit:
			for _, r := range batch {
				if err := apply(r); err != nil {
					return 0, err
				}
			}
			batch = batch[:0]
			goodEnd = off
		case recCheckpoint:
			// Only ever written at the head of a fresh log; a batch in
			// progress would be a bug, not a crash artifact.
			goodEnd = off
		default:
			batch = append(batch, rec)
		}
	}
	return goodEnd, nil
}
