// Package pager is the durable page-based storage subsystem: fixed-size
// slotted pages with CRC-protected typed headers, a shared buffer pool
// with clock eviction, and a per-store write-ahead log with redo
// recovery. Its DiskStore implements storage.Store, so the engine, all
// four execution modes, sharding and the serving layer run on it with
// zero changes above the storage line (ROADMAP: "graphs larger than
// RAM"). See DESIGN.md ("Durable page storage") for the on-disk formats
// and the recovery protocol.
package pager

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed size of every page, on disk and in the buffer
// pool.
const PageSize = 8192

// Page header layout (little endian):
//
//	[0:4)   crc32 (IEEE) of bytes [4:PageSize), stamped at flush time
//	[4:8)   pageID
//	[8:16)  lsn of the last WAL record applied to this page
//	[16:18) cell count (slots allocated, live or dead)
//	[18:20) freeHi: start of the cell data region (cells grow downward)
//	[20:22) live cell count
//	[22:24) reserved
//
// Slots follow the header, 4 bytes each (offset uint16, length uint16);
// offset 0 marks a dead slot. Cell data grows from PageSize downward to
// freeHi.
const (
	pageHdrSize = 24
	slotSize    = 4

	offCRC    = 0
	offPageID = 4
	offLSN    = 8
	offCells  = 16
	offFreeHi = 18
	offLive   = 20
)

// MaxCell is the largest cell payload one page can hold.
const MaxCell = PageSize - pageHdrSize - slotSize

// page is one 8 KiB page image. All accessors assume len(p) == PageSize.
type page []byte

// init formats p as an empty page with the given ID.
func (p page) init(id uint32) {
	for i := range p {
		p[i] = 0
	}
	binary.LittleEndian.PutUint32(p[offPageID:], id)
	binary.LittleEndian.PutUint16(p[offFreeHi:], PageSize)
}

func (p page) pageID() uint32    { return binary.LittleEndian.Uint32(p[offPageID:]) }
func (p page) lsn() uint64       { return binary.LittleEndian.Uint64(p[offLSN:]) }
func (p page) setLSN(l uint64)   { binary.LittleEndian.PutUint64(p[offLSN:], l) }
func (p page) cellCount() int    { return int(binary.LittleEndian.Uint16(p[offCells:])) }
func (p page) liveCells() int    { return int(binary.LittleEndian.Uint16(p[offLive:])) }
func (p page) freeHi() int       { return int(binary.LittleEndian.Uint16(p[offFreeHi:])) }
func (p page) setFreeHi(v int)   { binary.LittleEndian.PutUint16(p[offFreeHi:], uint16(v)) }
func (p page) setCells(n int)    { binary.LittleEndian.PutUint16(p[offCells:], uint16(n)) }
func (p page) setLive(n int)     { binary.LittleEndian.PutUint16(p[offLive:], uint16(n)) }
func (p page) slotPos(i int) int { return pageHdrSize + slotSize*i }

func (p page) slot(i int) (off, length int) {
	pos := p.slotPos(i)
	return int(binary.LittleEndian.Uint16(p[pos:])), int(binary.LittleEndian.Uint16(p[pos+2:]))
}

func (p page) setSlot(i, off, length int) {
	pos := p.slotPos(i)
	binary.LittleEndian.PutUint16(p[pos:], uint16(off))
	binary.LittleEndian.PutUint16(p[pos+2:], uint16(length))
}

// cell returns the payload of slot i and whether the slot is live.
func (p page) cell(i int) ([]byte, bool) {
	off, length := p.slot(i)
	if off == 0 {
		return nil, false
	}
	return p[off : off+length], true
}

// freeSpace is the contiguous gap between the slot array and the cell
// data region.
func (p page) freeSpace() int {
	return p.freeHi() - (pageHdrSize + slotSize*p.cellCount())
}

// deadSpace is the total payload bytes held by dead cells — bytes a
// compaction would reclaim (the slots themselves stay allocated, except
// a trailing run which compaction trims).
func (p page) deadSpace() int {
	live := 0
	for i := 0; i < p.cellCount(); i++ {
		if off, length := p.slot(i); off != 0 {
			live += length
		}
	}
	return PageSize - p.freeHi() - live
}

// addCell stores data in the page, compacting first when fragmentation
// is the only obstacle. It reuses a dead slot when one exists so that
// delete/insert churn does not grow the slot array without bound.
// Returns the slot index and whether the cell fit.
func (p page) addCell(data []byte) (int, bool) {
	slot := -1
	for i := 0; i < p.cellCount(); i++ {
		if off, _ := p.slot(i); off == 0 {
			slot = i
			break
		}
	}
	need := len(data)
	if slot < 0 {
		need += slotSize
	}
	if p.freeSpace() < need {
		if p.freeSpace()+p.deadSpace() < need {
			return 0, false
		}
		p.compact()
		// compact may have trimmed trailing dead slots, invalidating a
		// reused-slot choice; recheck.
		slot = -1
		for i := 0; i < p.cellCount(); i++ {
			if off, _ := p.slot(i); off == 0 {
				slot = i
				break
			}
		}
		need = len(data)
		if slot < 0 {
			need += slotSize
		}
		if p.freeSpace() < need {
			return 0, false
		}
	}
	if slot < 0 {
		slot = p.cellCount()
		p.setCells(slot + 1)
	}
	off := p.freeHi() - len(data)
	copy(p[off:], data)
	p.setFreeHi(off)
	p.setSlot(slot, off, len(data))
	p.setLive(p.liveCells() + 1)
	return slot, true
}

// updateCellInPlace overwrites slot i's payload when the new payload is
// no larger than the old one. The freed suffix bytes become dead space
// reclaimed by the next compaction.
func (p page) updateCellInPlace(i int, data []byte) bool {
	off, length := p.slot(i)
	if off == 0 || len(data) > length {
		return false
	}
	copy(p[off:], data)
	p.setSlot(i, off, len(data))
	return true
}

// delCell kills slot i. The payload bytes become dead space.
func (p page) delCell(i int) {
	if off, _ := p.slot(i); off == 0 {
		return
	}
	p.setSlot(i, 0, 0)
	p.setLive(p.liveCells() - 1)
}

// compact rewrites the cell data region so all live payloads are
// contiguous at the top of the page, and trims trailing dead slots.
// Live slot indices are preserved — the store's in-memory index refers
// to (page, slot) pairs across compactions.
func (p page) compact() {
	var buf [PageSize]byte
	hi := PageSize
	n := p.cellCount()
	type loc struct{ off, length int }
	locs := make([]loc, n)
	for i := 0; i < n; i++ {
		off, length := p.slot(i)
		if off == 0 {
			locs[i] = loc{}
			continue
		}
		hi -= length
		copy(buf[hi:], p[off:off+length])
		locs[i] = loc{off: hi, length: length}
	}
	copy(p[hi:], buf[hi:])
	for i, l := range locs {
		p.setSlot(i, l.off, l.length)
	}
	for n > 0 {
		if off, _ := p.slot(n - 1); off != 0 {
			break
		}
		n--
	}
	p.setCells(n)
	p.setFreeHi(hi)
}

// CorruptPageError reports a page whose checksum or self-identification
// failed on read — a torn write or external damage.
type CorruptPageError struct {
	Path   string
	PageID uint32
	Reason string
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("pager: corrupt page %d in %s: %s", e.PageID, e.Path, e.Reason)
}
