package pager

import (
	"path/filepath"
	"testing"
)

func TestBufferPoolEviction(t *testing.T) {
	dir := t.TempDir()
	pf, err := openPageFile(filepath.Join(dir, "t.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.close()
	bm := newBufferManager(minPoolPages)

	// Touch 4x the pool size in pages; each gets a distinct payload.
	n := uint32(4 * minPoolPages)
	for id := uint32(0); id < n; id++ {
		pf.allocate()
		f, err := bm.pin(pf, id, false)
		if err != nil {
			t.Fatalf("pin(%d): %v", id, err)
		}
		if _, ok := f.data.addCell([]byte{byte(id), byte(id >> 8)}); !ok {
			t.Fatal("addCell failed on empty page")
		}
		bm.unpin(f, true)
	}
	// Everything must read back correctly through eviction churn.
	for id := uint32(0); id < n; id++ {
		f, err := bm.pin(pf, id, true)
		if err != nil {
			t.Fatalf("re-pin(%d): %v", id, err)
		}
		cell, live := f.data.cell(0)
		if !live || cell[0] != byte(id) || cell[1] != byte(id>>8) {
			t.Fatalf("page %d cell = %v, %v", id, cell, live)
		}
		if f.data.pageID() != id {
			t.Fatalf("page %d identifies as %d", id, f.data.pageID())
		}
		bm.unpin(f, false)
	}
	hits, misses := bm.Stats()
	if misses < int64(n) {
		t.Fatalf("misses = %d, want >= %d (pool is 4x oversubscribed)", misses, n)
	}
	_ = hits
}

func TestBufferPoolExhaustion(t *testing.T) {
	dir := t.TempDir()
	pf, err := openPageFile(filepath.Join(dir, "t.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.close()
	bm := newBufferManager(minPoolPages)
	var pinned []*frame
	for i := 0; i < minPoolPages; i++ {
		pf.allocate()
		f, err := bm.pin(pf, uint32(i), false)
		if err != nil {
			t.Fatalf("pin(%d): %v", i, err)
		}
		pinned = append(pinned, f)
	}
	pf.allocate()
	if _, err := bm.pin(pf, uint32(minPoolPages), false); err == nil {
		t.Fatal("pin succeeded with every frame pinned")
	}
	// Releasing one pin unblocks the pool.
	bm.unpin(pinned[0], false)
	f, err := bm.pin(pf, uint32(minPoolPages), false)
	if err != nil {
		t.Fatalf("pin after unpin: %v", err)
	}
	bm.unpin(f, false)
	for _, f := range pinned[1:] {
		bm.unpin(f, false)
	}
}

func TestBufferPoolHitTracking(t *testing.T) {
	dir := t.TempDir()
	pf, err := openPageFile(filepath.Join(dir, "t.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.close()
	bm := newBufferManager(64)
	pf.allocate()
	f, _ := bm.pin(pf, 0, false)
	bm.unpin(f, true)
	for i := 0; i < 9; i++ {
		f, err := bm.pin(pf, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		bm.unpin(f, false)
	}
	hits, misses := bm.Stats()
	if hits != 9 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 9/1", hits, misses)
	}
}
