package pager

import (
	"os"
	"path/filepath"
	"testing"

	"sqloop/internal/sqltypes"
)

func intKey(i int64) sqltypes.Key { return sqltypes.NewInt(i).MapKey() }

func testRow(i int64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewString("row")}
}

func collectWAL(t *testing.T, path string) []walRec {
	t.Helper()
	var recs []walRec
	if _, err := replayWAL(path, func(r walRec) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("replayWAL: %v", err)
	}
	return recs
}

func TestWALAppendCommitReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := openWAL(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if _, err := w.append(walRec{typ: recInsert, key: intKey(i), row: testRow(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.append(walRec{typ: recDelete, key: intKey(3)}); err != nil {
		t.Fatal(err)
	}
	if err := w.commit(); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	recs := collectWAL(t, path)
	if len(recs) != 11 {
		t.Fatalf("replayed %d records, want 11", len(recs))
	}
	if recs[10].typ != recDelete || recs[10].key != intKey(3) {
		t.Fatalf("last record = %+v", recs[10])
	}
	if recs[2].typ != recInsert || recs[2].row[1].Str() != "row" {
		t.Fatalf("record 2 = %+v", recs[2])
	}
}

func TestWALUncommittedBatchDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := openWAL(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(walRec{typ: recInsert, key: intKey(1), row: testRow(1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.commit(); err != nil {
		t.Fatal(err)
	}
	// A second batch, flushed to disk but never committed.
	if _, err := w.append(walRec{typ: recInsert, key: intKey(2), row: testRow(2)}); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	if err := w.w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.mu.Unlock()
	w.f.Close() // abandon without commit: the "crash"

	recs := collectWAL(t, path)
	if len(recs) != 1 || recs[0].key != intKey(1) {
		t.Fatalf("replay = %+v, want only committed record", recs)
	}
}

func TestWALTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := openWAL(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(walRec{typ: recInsert, key: intKey(1), row: testRow(1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.commit(); err != nil {
		t.Fatal(err)
	}
	goodSize := w.size
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage that looks like the start of a frame.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	goodEnd, err := replayWAL(path, func(walRec) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if goodEnd != goodSize {
		t.Fatalf("goodEnd = %d, want %d", goodEnd, goodSize)
	}
	// Reopening at goodEnd truncates the garbage.
	w2, err := openWAL(path, goodEnd, false)
	if err != nil {
		t.Fatal(err)
	}
	w2.close()
	st, _ := os.Stat(path)
	if st.Size() != goodSize {
		t.Fatalf("file size after reopen = %d, want %d", st.Size(), goodSize)
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := openWAL(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if _, err := w.append(walRec{typ: recInsert, key: intKey(i), row: testRow(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.commit(); err != nil {
		t.Fatal(err)
	}
	if err := w.reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	if recs := collectWAL(t, path); len(recs) != 0 {
		t.Fatalf("replay after reset returned %d records", len(recs))
	}
	st, _ := os.Stat(path)
	// magic + one checkpoint record frame (8 + 1 payload byte).
	if want := int64(len(walMagic)) + 9; st.Size() != want {
		t.Fatalf("reset WAL size = %d, want %d", st.Size(), want)
	}
}

func TestWALCommitNoPendingIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := openWAL(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.commit(); err != nil {
		t.Fatal(err)
	}
	if err := w.commit(); err != nil {
		t.Fatal(err)
	}
	w.close()
	st, _ := os.Stat(path)
	if st.Size() != int64(len(walMagic)) {
		t.Fatalf("empty commits grew the log to %d bytes", st.Size())
	}
}

func TestWALBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	if err := os.WriteFile(path, []byte("NOTAWAL!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replayWAL(path, func(walRec) error { return nil }); err == nil {
		t.Fatal("replayWAL accepted bad magic")
	}
}

func TestWALRecPayloadRoundTrip(t *testing.T) {
	recs := []walRec{
		{typ: recInsert, key: intKey(42), row: sqltypes.Row{sqltypes.NewInt(42), sqltypes.NewFloat(3.5), sqltypes.NewString("αβγ"), sqltypes.NewBool(true), sqltypes.Null}},
		{typ: recUpdate, key: sqltypes.NewString("k").MapKey(), row: sqltypes.Row{}},
		{typ: recDelete, key: sqltypes.NewFloat(2.5).MapKey()},
		{typ: recClear},
		{typ: recCommit},
		{typ: recCheckpoint},
	}
	for _, want := range recs {
		got, err := decodeRecPayload(encodeRecPayload(want))
		if err != nil {
			t.Fatalf("%d: %v", want.typ, err)
		}
		if got.typ != want.typ || got.key != want.key || len(got.row) != len(want.row) {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
		for i := range want.row {
			if got.row[i].Kind() != want.row[i].Kind() || sqltypes.CompareTotal(got.row[i], want.row[i]) != 0 {
				t.Fatalf("row[%d]: %v != %v", i, got.row[i], want.row[i])
			}
		}
	}
}
