package pager

import (
	"os"
	"testing"

	"sqloop/internal/sqltypes"
)

// crashModel tracks expected store contents at each commit boundary.
type crashModel struct {
	boundaries []int64                  // WAL size after each commit
	states     []map[sqltypes.Key]int64 // expected contents at that boundary
}

func (m *crashModel) snapshot(walSize int64, state map[sqltypes.Key]int64) {
	cp := make(map[sqltypes.Key]int64, len(state))
	for k, v := range state {
		cp[k] = v
	}
	m.boundaries = append(m.boundaries, walSize)
	m.states = append(m.states, cp)
}

// stateAt returns the expected contents after recovering a WAL cut at
// offset c: the state of the last commit whose record is fully inside
// the cut.
func (m *crashModel) stateAt(c int64) map[sqltypes.Key]int64 {
	best := map[sqltypes.Key]int64{}
	for i, b := range m.boundaries {
		if b <= c {
			best = m.states[i]
		}
	}
	return best
}

func verifyStore(t *testing.T, s *DiskStore, want map[sqltypes.Key]int64, cut int64) {
	t.Helper()
	if s.Len() != len(want) {
		t.Fatalf("cut %d: Len = %d, want %d", cut, s.Len(), len(want))
	}
	got := make(map[sqltypes.Key]int64, s.Len())
	s.Scan(func(k sqltypes.Key, r sqltypes.Row) bool {
		got[k] = r[0].Int()
		return true
	})
	for k, v := range want {
		gv, ok := got[k]
		if !ok || gv != v {
			t.Fatalf("cut %d: key %v = %d,%v want %d", cut, k.Value(), gv, ok, v)
		}
	}
}

// TestCrashWALCutMatrix cuts the WAL at every byte offset — simulating
// a crash mid-write at each possible point — and asserts recovery
// yields exactly the committed prefix: never a torn record, never a
// half-applied batch, never a lost committed batch.
func TestCrashWALCutMatrix(t *testing.T) {
	workDir := t.TempDir()
	db, err := OpenDB(workDir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.CreateStore("m")
	if err != nil {
		t.Fatal(err)
	}

	model := &crashModel{}
	state := map[sqltypes.Key]int64{}
	model.snapshot(int64(len(walMagic)), state) // empty store before any batch
	next := int64(0)
	for batch := 0; batch < 25; batch++ {
		for op := 0; op < 3; op++ {
			switch (batch + op) % 3 {
			case 0:
				k := intKey(next)
				if err := s.Insert(k, sqltypes.Row{sqltypes.NewInt(next * 10)}); err != nil {
					t.Fatal(err)
				}
				state[k] = next * 10
				next++
			case 1:
				k := intKey(next / 2)
				if s.Update(k, sqltypes.Row{sqltypes.NewInt(-next)}) {
					state[k] = -next
				}
			case 2:
				k := intKey(next / 3)
				if s.Delete(k) {
					delete(state, k)
				}
			}
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		model.snapshot(s.wal.size, state)
	}
	walBytes, err := os.ReadFile(db.walPath("m"))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(walBytes)) != model.boundaries[len(model.boundaries)-1] {
		t.Fatalf("WAL size %d != last boundary %d", len(walBytes), model.boundaries[len(model.boundaries)-1])
	}
	// Abandon the original DB without flushing: the page file must stay
	// empty so every cut recovers purely from the log.
	if st, _ := os.Stat(db.pagePath("m")); st != nil && st.Size() != 0 {
		t.Fatalf("page file unexpectedly flushed (%d bytes); enlarge the pool", st.Size())
	}
	s.wal.close()
	s.pf.close()

	for cut := int64(len(walMagic)); cut <= int64(len(walBytes)); cut++ {
		runOneCut(t, walBytes[:cut], cut, model)
	}
}

func runOneCut(t *testing.T, walPrefix []byte, cut int64, model *crashModel) {
	t.Helper()
	dir := t.TempDir()
	db, err := OpenDB(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := os.WriteFile(db.walPath("m"), walPrefix, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := db.OpenStore("m")
	if err != nil {
		t.Fatalf("cut %d: OpenStore: %v", cut, err)
	}
	verifyStore(t, s, model.stateAt(cut), cut)
	// The store stays writable after recovery.
	probe := intKey(1 << 40)
	if err := s.Insert(probe, sqltypes.Row{sqltypes.NewInt(1)}); err != nil {
		t.Fatalf("cut %d: post-recovery insert: %v", cut, err)
	}
	if !s.Delete(probe) {
		t.Fatalf("cut %d: post-recovery delete failed", cut)
	}
}

// TestCrashAfterCheckpoint reruns the cut matrix against a store that
// checkpointed mid-history: recovery must combine the page-file state
// with the post-checkpoint log suffix.
func TestCrashAfterCheckpoint(t *testing.T) {
	workDir := t.TempDir()
	db, err := OpenDB(workDir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.CreateStore("m")
	if err != nil {
		t.Fatal(err)
	}
	state := map[sqltypes.Key]int64{}
	for i := int64(0); i < 200; i++ {
		if err := s.Insert(intKey(i), sqltypes.Row{sqltypes.NewInt(i)}); err != nil {
			t.Fatal(err)
		}
		state[intKey(i)] = i
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pageBytes, err := os.ReadFile(db.pagePath("m"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pageBytes) == 0 {
		t.Fatal("checkpoint left the page file empty")
	}

	model := &crashModel{}
	model.snapshot(s.wal.size, state)
	for batch := 0; batch < 10; batch++ {
		k := intKey(int64(batch * 7))
		if s.Update(k, sqltypes.Row{sqltypes.NewInt(int64(-batch - 1))}) {
			state[k] = int64(-batch - 1)
		}
		kd := intKey(int64(100 + batch))
		if s.Delete(kd) {
			delete(state, kd)
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		model.snapshot(s.wal.size, state)
	}
	walBytes, err := os.ReadFile(db.walPath("m"))
	if err != nil {
		t.Fatal(err)
	}
	s.wal.close()
	s.pf.close()

	for cut := model.boundaries[0]; cut <= int64(len(walBytes)); cut++ {
		dir := t.TempDir()
		db2, err := OpenDB(dir, Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(db2.pagePath("m"), pageBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(db2.walPath("m"), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := db2.OpenStore("m")
		if err != nil {
			t.Fatalf("cut %d: OpenStore: %v", cut, err)
		}
		verifyStore(t, s2, model.stateAt(cut), cut)
		db2.Close()
	}
}

// TestCrashMidBatchAbandon abandons a store with an uncommitted batch
// in the OS file (flushed but never committed): reopen must surface
// only the committed prefix.
func TestCrashMidBatchAbandon(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.CreateStore("m")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := s.Insert(intKey(i), testRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := int64(10); i < 20; i++ {
		if err := s.Insert(intKey(i), testRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.wal.mu.Lock()
	if err := s.wal.w.Flush(); err != nil {
		t.Fatal(err)
	}
	s.wal.mu.Unlock()
	s.wal.f.Close()
	s.pf.close()
	delete(db.stores, "m")

	db2, err := OpenDB(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2, err := db2.OpenStore("m")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 10 {
		t.Fatalf("Len after mid-batch crash = %d, want 10", s2.Len())
	}
	for i := int64(10); i < 20; i++ {
		if _, ok := s2.Get(intKey(i)); ok {
			t.Fatalf("uncommitted key %d visible after crash", i)
		}
	}
}
