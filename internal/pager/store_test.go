package pager

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sqloop/internal/obs"
	"sqloop/internal/sqltypes"
	"sqloop/internal/storage"
	"sqloop/internal/storage/storagetest"
)

func TestDiskStoreConformance(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, Options{BufferPoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	n := 0
	storagetest.Run(t, func() storage.Store {
		n++
		s, err := db.CreateStore(fmt.Sprintf("s%d", n))
		if err != nil {
			t.Fatalf("CreateStore: %v", err)
		}
		return s
	})
}

// TestDiskStoreConformanceTinyPool reruns the model tests with a pool
// far smaller than the data, so every access path crosses eviction.
func TestDiskStoreConformanceTinyPool(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	db, err := OpenDB(t.TempDir(), Options{BufferPoolPages: minPoolPages})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	n := 0
	storagetest.Run(t, func() storage.Store {
		n++
		s, err := db.CreateStore(fmt.Sprintf("s%d", n))
		if err != nil {
			t.Fatalf("CreateStore: %v", err)
		}
		return s
	})
}

func TestDiskStoreReopenDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, Options{BufferPoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.CreateStore("edges")
	if err != nil {
		t.Fatal(err)
	}
	const rows = 5000
	for i := int64(0); i < rows; i++ {
		if err := s.Insert(intKey(i), testRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < rows; i += 3 {
		s.Delete(intKey(i))
	}
	for i := int64(1); i < rows; i += 3 {
		s.Update(intKey(i), sqltypes.Row{sqltypes.NewInt(-i)})
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDB(dir, Options{BufferPoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2, err := db2.OpenStore("edges")
	if err != nil {
		t.Fatalf("OpenStore after close: %v", err)
	}
	want := 0
	for i := int64(0); i < rows; i++ {
		r, ok := s2.Get(intKey(i))
		switch i % 3 {
		case 0:
			if ok {
				t.Fatalf("deleted key %d survived reopen", i)
			}
		case 1:
			want++
			if !ok || r[0].Int() != -i {
				t.Fatalf("updated key %d = %v, %v", i, r, ok)
			}
		case 2:
			want++
			if !ok || r[0].Int() != i {
				t.Fatalf("key %d = %v, %v", i, r, ok)
			}
		}
	}
	if s2.Len() != want {
		t.Fatalf("Len after reopen = %d, want %d", s2.Len(), want)
	}
}

func TestDiskStoreCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := db.CreateStore("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		if err := s.Insert(intKey(i), testRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	walPath := db.walPath("t")
	before, _ := os.Stat(walPath)
	if before.Size() < 10000 {
		t.Fatalf("WAL suspiciously small before checkpoint: %d", before.Size())
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(walPath)
	if want := int64(len(walMagic)) + 9; after.Size() != want {
		t.Fatalf("WAL size after checkpoint = %d, want %d", after.Size(), want)
	}
	// State survives a checkpoint + reopen with an empty log.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDB(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2, err := db2.OpenStore("t")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1000 {
		t.Fatalf("Len after checkpointed reopen = %d", s2.Len())
	}
}

func TestDiskStoreDropRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := db.CreateStore("gone")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(intKey(1), testRow(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Errorf("file %s survived Drop", e.Name())
	}
	// The name is reusable.
	s2, err := db.CreateStore("gone")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("recreated store Len = %d", s2.Len())
	}
}

func TestDiskStoreMetricsWired(t *testing.T) {
	reg := obs.NewRegistry()
	db, err := OpenDB(t.TempDir(), Options{BufferPoolPages: minPoolPages, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := db.CreateStore("m")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10000; i++ {
		if err := s.Insert(intKey(i), testRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 10000; i += 7 {
		s.Get(intKey(i))
	}
	snap := reg.Snapshot()
	if snap.Counters["sqloop_pager_page_writes"] == 0 {
		t.Error("no page writes recorded despite eviction pressure")
	}
	if snap.Counters["sqloop_pager_evictions"] == 0 {
		t.Error("no evictions recorded")
	}
	if _, ok := snap.Gauges["sqloop_pager_hit_rate_percent"]; !ok {
		t.Error("hit rate gauge missing")
	}
}

func TestSafeName(t *testing.T) {
	a, b := safeName("Weird Name!"), safeName("weird_name_")
	if a == b {
		t.Fatalf("distinct names collide: %q", a)
	}
	if safeName("edges") != "edges" {
		t.Fatalf("clean name mangled: %q", safeName("edges"))
	}
	for _, n := range []string{"../../etc/passwd", "a/b", "CON", ""} {
		s := safeName(n)
		if filepath.Base(s) != s || s == "" {
			t.Fatalf("safeName(%q) = %q is not a plain filename", n, s)
		}
	}
}

func TestDiskStoreWideRows(t *testing.T) {
	db, err := OpenDB(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := db.CreateStore("wide")
	if err != nil {
		t.Fatal(err)
	}
	// A row a few KiB wide still fits one cell; oversized rows error.
	big := make(sqltypes.Row, 0, 100)
	for i := 0; i < 100; i++ {
		big = append(big, sqltypes.NewString("0123456789012345678901234567890123456789"))
	}
	if err := s.Insert(intKey(1), big); err != nil {
		t.Fatalf("4 KiB row rejected: %v", err)
	}
	huge := sqltypes.Row{sqltypes.NewString(string(make([]byte, PageSize)))}
	if err := s.Insert(intKey(2), huge); err == nil {
		t.Fatal("row larger than a page accepted")
	}
	r, ok := s.Get(intKey(1))
	if !ok || len(r) != 100 {
		t.Fatalf("wide row read back as %d cols, %v", len(r), ok)
	}
}
